#!/usr/bin/env python3
"""Smoke tests for tools/schedule_dump.py (ctest: tools.schedule_dump).

Drives the pretty-printer as a subprocess over edge-case scripts the corpus
itself never commits: an empty schedule, a crash-grant-only schedule, and
the malformed/out-of-range inputs the validator must reject with a clean
exit code instead of a traceback.
"""

import os
import subprocess
import sys
import tempfile
import unittest

TOOL = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                    os.pardir, os.pardir, "tools", "schedule_dump.py")


def run_tool(*paths):
    return subprocess.run([sys.executable, TOOL, *paths],
                          capture_output=True, text=True)


class ScheduleDumpTest(unittest.TestCase):
    def setUp(self):
        self._dir = tempfile.TemporaryDirectory()
        self.addCleanup(self._dir.cleanup)

    def write(self, name, text):
        path = os.path.join(self._dir.name, name)
        with open(path, "w", encoding="utf-8") as f:
            f.write(text)
        return path

    def test_no_args_prints_usage_and_exits_2(self):
        result = run_tool()
        self.assertEqual(result.returncode, 2)
        self.assertIn("Usage", result.stderr)

    def test_empty_schedule_dumps_cleanly(self):
        # A legal script with no ops and no grants — the searcher never
        # emits one, but replay tooling must not choke on it.
        path = self.write("empty.sched",
                          "schedule-script v1\nprocesses 2\ngrants\nend\n")
        result = run_tool(path)
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("processes: 2", result.stdout)
        self.assertIn("grants: 0 total", result.stdout)

    def test_crash_grant_only_schedule(self):
        # Every grant is a kill: no steps, two crash victims. The dump must
        # decode the !pid form and render both the totals note and the RLE.
        path = self.write("crash.sched",
                          "schedule-script v1\n"
                          "processes 3\n"
                          "meta crashes 2\n"
                          "grants !0 !2\n"
                          "end\n")
        result = run_tool(path)
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("crashes: !p0 !p2", result.stdout)
        self.assertIn("!p0 !p2", result.stdout.splitlines()[-2])

    def test_comments_and_meta_survive(self):
        path = self.write("meta.sched",
                          "# leading comment\n"
                          "schedule-script v1\n"
                          "processes 2\n"
                          "meta fixture stack_epoch\n"
                          "op 0 push 7\n"
                          "op 1 pop 0\n"
                          "grants 0 0 1 0\n"
                          "end\n")
        result = run_tool(path)
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("meta fixture: stack_epoch", result.stdout)
        self.assertIn("push(7)", result.stdout)
        self.assertIn("p0x2 p1x1 p0x1", result.stdout)

    def test_leased_fixture_renders_without_warning(self):
        path = self.write("leased.sched",
                          "schedule-script v1\n"
                          "processes 2\n"
                          "meta fixture stack_leased_epoch_batched\n"
                          "op 0 push 7\n"
                          "grants 0 0\n"
                          "end\n")
        result = run_tool(path)
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("meta fixture: stack_leased_epoch_batched",
                      result.stdout)
        self.assertNotIn("warning", result.stderr)

    def test_unknown_fixture_warns_but_dumps(self):
        # A typo'd (or future-engine) fixture name must not kill the dump —
        # the grants are still worth rendering — but it must be called out.
        path = self.write("typo.sched",
                          "schedule-script v1\n"
                          "processes 2\n"
                          "meta fixture stack_leased_hazrd\n"
                          "grants 0 1\n"
                          "end\n")
        result = run_tool(path)
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("grant runs: p0x1 p1x1", result.stdout)
        self.assertIn("warning", result.stderr)
        self.assertIn("stack_leased_hazrd", result.stderr)

    def test_conviction_script_renders_prelude_and_verdict(self):
        # A lease-mutant conviction (PR 10): the expect_verdict line must
        # be surfaced and the staged prelude split out of the grant runs so
        # the forced prefix is distinguishable from the searched suffix.
        path = self.write("convict.sched",
                          "schedule-script v1\n"
                          "processes 3\n"
                          "meta fixture stack_leased_mutant_no_restamp\n"
                          "meta expect_verdict violation\n"
                          "meta search_prelude 4\n"
                          "grants 0 0 0 2 1 !1 0 2\n"
                          "end\n")
        result = run_tool(path)
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("conviction: replay must FAIL", result.stdout)
        self.assertIn("staged prelude: p0x3 p2x1", result.stdout)
        self.assertIn("searched suffix: p1x1 !p1 p0x1 p2x1", result.stdout)
        self.assertNotIn("warning", result.stderr)

    def test_prelude_longer_than_script_is_rejected(self):
        path = self.write("badprelude.sched",
                          "schedule-script v1\n"
                          "processes 2\n"
                          "meta search_prelude 9\n"
                          "grants 0 1\n"
                          "end\n")
        result = run_tool(path)
        self.assertEqual(result.returncode, 1)
        self.assertIn("search_prelude 9 exceeds", result.stderr)

    def test_wrong_header_fails_cleanly(self):
        path = self.write("bad.sched", "not-a-schedule\n")
        result = run_tool(path)
        self.assertEqual(result.returncode, 1)
        self.assertIn("not a schedule-script v1 file", result.stderr)

    def test_grant_pid_out_of_range_is_rejected(self):
        path = self.write("range.sched",
                          "schedule-script v1\n"
                          "processes 2\n"
                          "grants 0 5\n"
                          "end\n")
        result = run_tool(path)
        self.assertEqual(result.returncode, 1)
        self.assertIn("grant pid 5 out of range", result.stderr)

    def test_crash_victim_out_of_range_is_rejected(self):
        path = self.write("crashrange.sched",
                          "schedule-script v1\n"
                          "processes 2\n"
                          "grants !3\n"
                          "end\n")
        result = run_tool(path)
        self.assertEqual(result.returncode, 1)
        self.assertIn("grant pid 3 out of range", result.stderr)


if __name__ == "__main__":
    unittest.main()
