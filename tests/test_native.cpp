// Native-platform tests: the same algorithms running on std::atomic with
// real threads.
//
// Two styles:
//   - burst linearizability: short bursts of operations across threads,
//     timestamped with a shared atomic clock, checked against the
//     sequential specs (one fresh object per burst);
//   - invariant stress: longer runs checking sound one-sided invariants
//     (e.g. a DWrite completing strictly between two DReads MUST be
//     flagged; an SC succeeding implies no SC succeeded since the LL).
#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <thread>

#include "core/aba_register_bounded.h"
#include "core/aba_register_from_llsc.h"
#include "core/aba_register_unbounded_tag.h"
#include "core/llsc_register_array.h"
#include "core/llsc_single_cas.h"
#include "core/llsc_unbounded_tag.h"
#include "native/native_platform.h"
#include "spec/lin_checker.h"
#include "spec/specs.h"
#include "util/cacheline.h"
#include "util/rng.h"

namespace aba::testing {
namespace {

using NativeP = native::NativePlatform<>;

native::NativePlatform<>::Env g_env;

// ------------------------------------------------------------ burst checks

// Runs `bursts` independent bursts: each burst builds a fresh object via
// `make`, spawns n threads that each run `ops_per_thread` ops produced by
// `op_runner(pid, i, clock, history_collector)`, then checks the burst's
// history with `check`.
template <class MakeFn, class RunFn, class CheckFn>
void run_bursts(int n, int bursts, int ops_per_thread, MakeFn make, RunFn run_op,
                CheckFn check) {
  for (int burst = 0; burst < bursts; ++burst) {
    auto obj = make(burst);
    std::atomic<std::uint64_t> clock{0};
    spec::History history;
    std::barrier sync(n);
    std::vector<std::thread> threads;
    for (int pid = 0; pid < n; ++pid) {
      threads.emplace_back([&, pid] {
        util::Xoshiro256 rng(static_cast<std::uint64_t>(burst) * 1000 + pid);
        sync.arrive_and_wait();
        for (int i = 0; i < ops_per_thread; ++i) {
          run_op(*obj, pid, rng, clock, history);
        }
      });
    }
    for (auto& t : threads) t.join();
    check(history.ops(), burst);
  }
}

TEST(NativeFig4, BurstHistoriesLinearizable) {
  using Fig4 = core::AbaRegisterBounded<NativeP>;
  const int n = 3;
  run_bursts(
      n, /*bursts=*/40, /*ops_per_thread=*/4,
      [&](int) { return std::make_unique<Fig4>(g_env, n, Fig4::Options{.value_bits = 4}); },
      [](Fig4& reg, int pid, util::Xoshiro256& rng,
         std::atomic<std::uint64_t>& clock, spec::History& history) {
        if (rng.chance(2, 5)) {
          const std::uint64_t v = rng.below(16);
          const auto idx =
              history.begin_op(pid, spec::Method::kDWrite, v, clock.fetch_add(1));
          reg.dwrite(pid, v);
          history.complete(idx, 0, clock.fetch_add(1));
        } else {
          const auto idx =
              history.begin_op(pid, spec::Method::kDRead, 0, clock.fetch_add(1));
          const auto [value, flag] = reg.dread(pid);
          history.complete(idx, spec::pack_dread_result(value, flag),
                           clock.fetch_add(1));
        }
      },
      [&](const std::vector<spec::Op>& ops, int burst) {
        const auto result = spec::check_linearizable<spec::AbaRegisterSpec>(
            ops, spec::AbaRegisterSpec::initial(n, 0));
        EXPECT_TRUE(result.linearizable)
            << "burst " << burst << "\n" << spec::explain(ops, result);
      });
}

TEST(NativeFig3, BurstHistoriesLinearizable) {
  using Fig3 = core::LlscSingleCas<NativeP>;
  const int n = 3;
  run_bursts(
      n, /*bursts=*/40, /*ops_per_thread=*/4,
      [&](int) {
        return std::make_unique<Fig3>(
            g_env, n,
            Fig3::Options{.value_bits = 8, .initial_value = 0,
                          .initially_linked = true});
      },
      [](Fig3& obj, int pid, util::Xoshiro256& rng,
         std::atomic<std::uint64_t>& clock, spec::History& history) {
        const auto dice = rng.below(10);
        if (dice < 4) {
          const auto idx =
              history.begin_op(pid, spec::Method::kLL, 0, clock.fetch_add(1));
          const auto v = obj.ll(pid);
          history.complete(idx, v, clock.fetch_add(1));
        } else if (dice < 8) {
          const std::uint64_t v = rng.below(64);
          const auto idx =
              history.begin_op(pid, spec::Method::kSC, v, clock.fetch_add(1));
          const bool ok = obj.sc(pid, v);
          history.complete(idx, ok ? 1 : 0, clock.fetch_add(1));
        } else {
          const auto idx =
              history.begin_op(pid, spec::Method::kVL, 0, clock.fetch_add(1));
          const bool ok = obj.vl(pid);
          history.complete(idx, ok ? 1 : 0, clock.fetch_add(1));
        }
      },
      [&](const std::vector<spec::Op>& ops, int burst) {
        const auto result = spec::check_linearizable<spec::LlscSpec>(
            ops, spec::LlscSpec::initial(n, 0, true));
        EXPECT_TRUE(result.linearizable)
            << "burst " << burst << "\n" << spec::explain(ops, result);
      });
}

TEST(NativeRegArray, BurstHistoriesLinearizable) {
  using RegArray = core::LlscRegisterArray<NativeP>;
  const int n = 3;
  run_bursts(
      n, /*bursts=*/40, /*ops_per_thread=*/4,
      [&](int) {
        return std::make_unique<RegArray>(
            g_env, n,
            RegArray::Options{.value_bits = 8, .initial_value = 0,
                              .initially_linked = true});
      },
      [](RegArray& obj, int pid, util::Xoshiro256& rng,
         std::atomic<std::uint64_t>& clock, spec::History& history) {
        const auto dice = rng.below(10);
        if (dice < 4) {
          const auto idx =
              history.begin_op(pid, spec::Method::kLL, 0, clock.fetch_add(1));
          const auto v = obj.ll(pid);
          history.complete(idx, v, clock.fetch_add(1));
        } else if (dice < 8) {
          const std::uint64_t v = rng.below(64);
          const auto idx =
              history.begin_op(pid, spec::Method::kSC, v, clock.fetch_add(1));
          const bool ok = obj.sc(pid, v);
          history.complete(idx, ok ? 1 : 0, clock.fetch_add(1));
        } else {
          const auto idx =
              history.begin_op(pid, spec::Method::kVL, 0, clock.fetch_add(1));
          const bool ok = obj.vl(pid);
          history.complete(idx, ok ? 1 : 0, clock.fetch_add(1));
        }
      },
      [&](const std::vector<spec::Op>& ops, int burst) {
        const auto result = spec::check_linearizable<spec::LlscSpec>(
            ops, spec::LlscSpec::initial(n, 0, true));
        EXPECT_TRUE(result.linearizable)
            << "burst " << burst << "\n" << spec::explain(ops, result);
      });
}

// -------------------------------------------------------- invariant stress

TEST(NativeFig4Stress, ContainedWritesAreAlwaysFlagged) {
  using Fig4 = core::AbaRegisterBounded<NativeP>;
  const int n = 4;  // 1 writer + 3 readers.
  Fig4 reg(g_env, n, Fig4::Options{.value_bits = 4});
  std::atomic<std::uint64_t> writes_completed{0};
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> violations{0};
  std::atomic<std::uint64_t> flagged_reads{0};

  // Readers run a fixed number of reads; the writer keeps writing until all
  // readers are done (so writes genuinely overlap reads on any scheduler).
  std::atomic<int> readers_running{n - 1};
  std::thread writer([&] {
    std::uint64_t i = 0;
    while (readers_running.load() > 0) {
      reg.dwrite(0, i++ & 15);
      writes_completed.fetch_add(1);
      if ((i & 63) == 0) std::this_thread::yield();
    }
    stop.store(true);
  });

  std::vector<std::thread> readers;
  for (int pid = 1; pid < n; ++pid) {
    readers.emplace_back([&, pid] {
      // Count of completed writes sampled right after my previous DRead
      // responded.
      std::uint64_t after_prev = writes_completed.load();
      for (int i = 0; i < 3000; ++i) {
        const std::uint64_t before_invoke = writes_completed.load();
        const auto [value, flag] = reg.dread(pid);
        const std::uint64_t after_resp = writes_completed.load();
        if (flag) flagged_reads.fetch_add(1);
        // Sound invariant: a DWrite that completed strictly inside the
        // window (after my previous DRead responded, before this DRead was
        // invoked) must be flagged.
        if (!flag && before_invoke > after_prev) violations.fetch_add(1);
        after_prev = after_resp;
      }
      readers_running.fetch_sub(1);
    });
  }
  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_EQ(violations.load(), 0u);
  EXPECT_GT(flagged_reads.load(), 0u);
}

TEST(NativeFig3Stress, ScSuccessesAreExclusivePerLinkEpoch) {
  using Fig3 = core::LlscSingleCas<NativeP>;
  const int n = 4;
  Fig3 obj(g_env, n, Fig3::Options{.value_bits = 32, .initial_value = 0,
                                   .initially_linked = false});
  // Each thread loops LL; SC(unique value). Every successful SC publishes a
  // globally unique value; values observed by LL must all be distinct
  // successful-SC values (no lost or duplicated successes).
  std::atomic<std::uint64_t> successes{0};
  std::vector<std::thread> threads;
  std::vector<std::uint64_t> per_thread_successes(n, 0);
  for (int pid = 0; pid < n; ++pid) {
    threads.emplace_back([&, pid] {
      for (int i = 0; i < 4000; ++i) {
        obj.ll(pid);
        const std::uint64_t unique =
            (static_cast<std::uint64_t>(i) << 3) | static_cast<std::uint64_t>(pid);
        if (obj.sc(pid, unique)) ++per_thread_successes[pid];
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int pid = 0; pid < n; ++pid) successes += per_thread_successes[pid];
  // At least the uncontended successes must land; and never more than the
  // number of attempts.
  EXPECT_GT(successes.load(), 0u);
  EXPECT_LE(successes.load(), static_cast<std::uint64_t>(n) * 4000u);
}

TEST(NativeFig5Stress, ReductionFlagsContainedWrites) {
  using Llsc = core::LlscUnboundedTag<NativeP>;
  const int n = 3;
  Llsc llsc(g_env, n,
            Llsc::Options{.value_bits = 16, .initial_value = 0,
                          .initially_linked = true});
  core::AbaRegisterFromLlsc<Llsc> reg(llsc, n, 0);

  std::atomic<std::uint64_t> writes_completed{0};
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> violations{0};

  std::atomic<int> readers_running{n - 1};
  std::thread writer([&] {
    std::uint64_t i = 0;
    while (readers_running.load() > 0) {
      reg.dwrite(0, i++ & 255);
      writes_completed.fetch_add(1);
      if ((i & 63) == 0) std::this_thread::yield();
    }
    stop.store(true);
  });
  std::vector<std::thread> readers;
  for (int pid = 1; pid < n; ++pid) {
    readers.emplace_back([&, pid] {
      std::uint64_t after_prev = writes_completed.load();
      for (int i = 0; i < 3000; ++i) {
        const std::uint64_t before_invoke = writes_completed.load();
        const auto [value, flag] = reg.dread(pid);
        const std::uint64_t after_resp = writes_completed.load();
        if (!flag && before_invoke > after_prev) violations.fetch_add(1);
        after_prev = after_resp;
      }
      readers_running.fetch_sub(1);
    });
  }
  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_EQ(violations.load(), 0u);
}

// ----------------------------------------------------------- step counting

TEST(NativeStepCounter, CountsSharedOperations) {
  using Fig4 = core::AbaRegisterBounded<NativeP>;
  Fig4 reg(g_env, 2, Fig4::Options{.value_bits = 4});
  const std::uint64_t before = native::step_counter();
  reg.dwrite(0, 1);
  EXPECT_EQ(native::step_counter() - before, 2u);
  const std::uint64_t mid = native::step_counter();
  reg.dread(1);
  EXPECT_EQ(native::step_counter() - mid, 4u);
}

// ------------------------------------------------------ policy equivalence

// Both policies must satisfy the Platform concept, and the Fast policy must
// actually isolate its words on cache lines.
static_assert(aba::Platform<native::NativePlatform<native::Counted>>);
static_assert(aba::Platform<native::NativePlatform<native::Fast>>);
static_assert(aba::Platform<native::NativePlatform<native::FastAsymmetric>>);
// The fence trait resolves through the platform: asymmetric only where the
// policy opted in, NoFence (orderings carry the edge) everywhere else.
static_assert(
    std::is_same_v<aba::PlatformFenceT<native::NativePlatform<native::FastAsymmetric>>,
                   util::AsymmetricFence>);
static_assert(
    std::is_same_v<aba::PlatformFenceT<native::NativePlatform<native::Fast>>,
                   util::NoFence>);
static_assert(
    std::is_same_v<aba::PlatformFenceT<native::NativePlatform<native::Counted>>,
                   util::NoFence>);
static_assert(alignof(native::NativePlatform<native::Fast>::Cas) >=
              util::kCacheLineSize);
// And the isolated object is exactly one line — the unused bound metadata
// must not push it to two.
static_assert(sizeof(native::NativePlatform<native::Fast>::Cas) ==
              util::kCacheLineSize);
static_assert(alignof(native::NativePlatform<native::Counted>::Cas) <
              util::kCacheLineSize);

// Runs a deterministic token-serialized multithreaded LL/SC workload: n real
// threads, but each operation runs only when the global turn counter hands
// it the token, so the schedule — and hence every operation's result — is a
// pure function of (n, rounds). Running the identical schedule on both
// platform policies must produce identical traces: the Fast policy changes
// instrumentation, layout and backoff, never results.
template <class P>
std::vector<std::uint64_t> tokenized_llsc_trace(int n, int rounds) {
  typename P::Env env;
  core::LlscSingleCas<P> obj(
      env, n,
      typename core::LlscSingleCas<P>::Options{
          .value_bits = 16, .initial_value = 0, .initially_linked = true});
  std::vector<std::uint64_t> trace(static_cast<std::size_t>(n) * rounds, 0);
  std::atomic<int> turn{0};
  std::vector<std::thread> threads;
  for (int pid = 0; pid < n; ++pid) {
    threads.emplace_back([&, pid] {
      for (int r = 0; r < rounds; ++r) {
        const int my_step = r * n + pid;
        while (turn.load() != my_step) std::this_thread::yield();
        std::uint64_t result = 0;
        switch ((pid + r) % 3) {
          case 0:
            result = obj.ll(pid);
            break;
          case 1:
            result = obj.sc(pid, static_cast<std::uint64_t>(my_step) & 0xFFFF)
                         ? 1
                         : 0;
            break;
          default:
            result = obj.vl(pid) ? 1 : 0;
            break;
        }
        trace[static_cast<std::size_t>(my_step)] = result;
        turn.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  return trace;
}

TEST(NativePolicy, FastMatchesCountedOnLlscWorkload) {
  using CountedP = native::NativePlatform<native::Counted>;
  using FastP = native::NativePlatform<native::Fast>;
  const auto counted = tokenized_llsc_trace<CountedP>(3, 64);
  const auto fast = tokenized_llsc_trace<FastP>(3, 64);
  EXPECT_EQ(counted, fast);
}

TEST(NativePolicy, FastPlatformCountsNoSteps) {
  using FastP = native::NativePlatform<native::Fast>;
  FastP::Env env;
  core::LlscSingleCas<FastP> obj(env, 2, {});
  const std::uint64_t before = native::step_counter();
  obj.ll(0);
  obj.sc(0, 1);
  obj.vl(0);
  EXPECT_EQ(native::step_counter(), before);
}

TEST(NativeStepCounter, Fig3WorstCaseRespected) {
  using Fig3 = core::LlscSingleCas<NativeP>;
  const int n = 4;
  Fig3 obj(g_env, n, Fig3::Options{.initially_linked = false});
  for (int pid = 0; pid < n; ++pid) {
    const std::uint64_t before = native::step_counter();
    obj.ll(pid);
    EXPECT_LE(native::step_counter() - before,
              static_cast<std::uint64_t>(1 + 2 * n));
    const std::uint64_t mid = native::step_counter();
    obj.sc(pid, 7);
    EXPECT_LE(native::step_counter() - mid, static_cast<std::uint64_t>(2 * n));
  }
}

}  // namespace
}  // namespace aba::testing
