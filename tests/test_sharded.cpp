// Tests for the sharding layer (structures/sharded.h, util/shard.h).
//
// The contract under test is the relaxed-pool semantics the header
// documents: each shard's sub-history is linearizable against the *exact*
// stack/queue spec (sharding adds no shared state, so every shard is just
// an ordinary TreiberStack/MsQueue), the composite conserves the value
// multiset, and "empty" is a per-scan observation charged to the home
// shard. Coverage:
//
//   * routing units: the home-shard hash is balanced over dense pids and
//     the probe order visits every shard exactly once;
//   * sequential semantics: per-shard LIFO/FIFO, elastic push fall-through
//     under pool pressure, steal on empty home shard;
//   * the deterministic steal race: a stealer and the home-shard popper
//     compete for the same last element under a step-controlled sim
//     schedule — exactly one wins, in both resolution orders, and the
//     per-shard histories stay linearizable;
//   * random-schedule sweeps across (shards × head policy × reclaimer),
//     splitting each history by the invoker's shard tags and checking
//     every sub-history, plus multiset conservation;
//   * Fast ≡ Counted determinism on a token-serialized native workload for
//     both sharded structures (the platform policy changes layout and
//     instrumentation, never results);
//   * native balanced-accounting stress (the suite CI's TSan job runs).
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "core/llsc_single_cas.h"
#include "harness/adapters.h"
#include "harness/harness.h"
#include "native/native_platform.h"
#include "reclaim/epoch.h"
#include "reclaim/hazard_pointer.h"
#include "reclaim/leaky.h"
#include "reclaim/tagged.h"
#include "sim/sim_platform.h"
#include "spec/lin_checker.h"
#include "spec/specs.h"
#include "structures/sharded.h"
#include "util/rng.h"
#include "util/shard.h"

namespace aba::structures {
namespace {

using SimP = sim::SimPlatform;
using NativeP = native::NativePlatform<native::Counted>;
using harness::WorkloadOp;
using spec::Method;

// ------------------------------------------------------------- routing

static_assert(util::home_shard(0, 4) == 0);
static_assert(util::home_shard(5, 4) == 1);
static_assert(util::home_shard(7, 1) == 0);
static_assert(util::probe_shard(2, 0, 4) == 2);
static_assert(util::probe_shard(2, 3, 4) == 1);

TEST(ShardRouting, HomeShardBalancedOverDensePids) {
  for (int shards : {1, 2, 3, 4, 8}) {
    for (int n : {1, 2, 4, 8, 13}) {
      std::vector<int> count(static_cast<std::size_t>(shards), 0);
      for (int pid = 0; pid < n; ++pid) {
        const int s = util::home_shard(pid, shards);
        ASSERT_GE(s, 0);
        ASSERT_LT(s, shards);
        ++count[static_cast<std::size_t>(s)];
      }
      const auto [lo, hi] = std::minmax_element(count.begin(), count.end());
      EXPECT_LE(*hi - *lo, 1) << "shards=" << shards << " n=" << n;
    }
  }
}

TEST(ShardRouting, ProbeVisitsEveryShardExactlyOnce) {
  for (int shards : {1, 2, 4, 8}) {
    for (int home = 0; home < shards; ++home) {
      std::vector<bool> seen(static_cast<std::size_t>(shards), false);
      for (int attempt = 0; attempt < shards; ++attempt) {
        const int s = util::probe_shard(home, attempt, shards);
        EXPECT_FALSE(seen[static_cast<std::size_t>(s)]);
        seen[static_cast<std::size_t>(s)] = true;
      }
      EXPECT_EQ(util::probe_shard(home, 0, shards), home);
    }
  }
}

// ------------------------------------------------------------- fixtures

// Sharded stack whose head policy is (Env&, n)-constructible.
template <class Head, class R, int kShards>
struct SweepShardedStack : ShardedTreiberStack<SimP, Head, R, kShards> {
  using Base = ShardedTreiberStack<SimP, Head, R, kShards>;
  SweepShardedStack(sim::SimWorld& world, int n, int per_process_per_shard)
      : Base(world, n, Base::make_heads(world, n), per_process_per_shard) {}
};

// Sharded stack over per-shard Figure-3 LL/SC heads (the heads wrap
// external LL/SC objects, so the array is built by hand).
template <class R, int kShards>
struct ShardedLlscStack {
  using Llsc = core::LlscSingleCas<SimP>;
  using Head = LlscHead<Llsc>;
  using Base = ShardedTreiberStack<SimP, Head, R, kShards>;

  ShardedLlscStack(sim::SimWorld& world, int n, int per_process_per_shard)
      : llscs(make_llscs(world, n)),
        stack(world, n, make_heads(), per_process_per_shard) {}

  bool push(int p, std::uint64_t v) { return stack.push(p, v); }
  std::optional<std::uint64_t> pop(int p) { return stack.pop(p); }
  // Uniform container verbs (structures/concepts.h) so the wrapper feeds
  // harness::ContainerInvoker like the structures it wraps.
  bool try_push(int p, std::uint64_t v) { return stack.push(p, v); }
  std::optional<std::uint64_t> try_pop(int p) { return stack.pop(p); }
  int last_shard(int p) const { return stack.last_shard(p); }

  std::array<std::unique_ptr<Llsc>, kShards> llscs;
  Base stack;

 private:
  static std::array<std::unique_ptr<Llsc>, kShards> make_llscs(
      sim::SimWorld& world, int n) {
    std::array<std::unique_ptr<Llsc>, kShards> out;
    for (auto& l : out) {
      l = std::make_unique<Llsc>(
          world, n,
          typename Llsc::Options{.value_bits = 32,
                                 .initial_value = kNullIndex,
                                 .initially_linked = false});
    }
    return out;
  }

  std::array<std::unique_ptr<Head>, kShards> make_heads() {
    std::array<std::unique_ptr<Head>, kShards> out;
    for (int s = 0; s < kShards; ++s) {
      out[static_cast<std::size_t>(s)] = std::make_unique<Head>(*llscs[s]);
    }
    return out;
  }
};

using TaggedHead = TaggedCasHead<SimP>;
using RawHead = RawCasHead<SimP>;

// ---------------------------------------------------------- sequential

TEST(ShardedStackSequential, PerShardLifoSingleProcess) {
  sim::SimWorld world(1);
  SweepShardedStack<TaggedHead, reclaim::TaggedReclaimer<SimP>, 2> s(world, 1, 4);
  std::optional<std::uint64_t> r1, r2, r3;
  world.invoke(0, [&] {
    s.push(0, 10);
    s.push(0, 20);
    s.push(0, 30);
    r1 = s.pop(0);
    r2 = s.pop(0);
    r3 = s.pop(0);
  });
  world.run_to_completion(0);
  // pid 0's home shard is 0 and its pool never drains, so everything lands
  // on shard 0 and the composite degenerates to plain LIFO.
  EXPECT_EQ(s.last_shard(0), 0);
  EXPECT_EQ(r1, std::optional<std::uint64_t>(30));
  EXPECT_EQ(r2, std::optional<std::uint64_t>(20));
  EXPECT_EQ(r3, std::optional<std::uint64_t>(10));
}

TEST(ShardedStackSequential, PushFallsThroughOnPoolPressure) {
  sim::SimWorld world(1);
  // One node per process per shard: the second push must fall through to
  // shard 1, the third must report pool exhaustion.
  SweepShardedStack<TaggedHead, reclaim::TaggedReclaimer<SimP>, 2> s(world, 1, 1);
  bool ok1 = false, ok2 = false, ok3 = true;
  std::optional<std::uint64_t> r1, r2, r3;
  world.invoke(0, [&] {
    ok1 = s.push(0, 10);
    const int first = s.last_shard(0);
    ABA_CHECK(first == 0);
    ok2 = s.push(0, 20);
    const int second = s.last_shard(0);
    ABA_CHECK(second == 1);
    ok3 = s.push(0, 30);
    r1 = s.pop(0);  // home shard 0
    r2 = s.pop(0);  // shard 0 empty -> steals 20 from shard 1
    r3 = s.pop(0);
  });
  world.run_to_completion(0);
  EXPECT_TRUE(ok1);
  EXPECT_TRUE(ok2);
  EXPECT_FALSE(ok3);
  EXPECT_EQ(r1, std::optional<std::uint64_t>(10));
  EXPECT_EQ(r2, std::optional<std::uint64_t>(20));
  EXPECT_EQ(r3, std::nullopt);
}

TEST(ShardedStackSequential, StealRecoversAnotherHomesValues) {
  sim::SimWorld world(2);
  SweepShardedStack<TaggedHead, reclaim::TaggedReclaimer<SimP>, 2> s(world, 2, 4);
  // pid 0 is homed on shard 0, pid 1 on shard 1.
  world.invoke(0, [&] { s.push(0, 77); });
  world.run_to_completion(0);
  std::optional<std::uint64_t> got;
  world.invoke(1, [&] { got = s.pop(1); });
  world.run_to_completion(1);
  EXPECT_EQ(got, std::optional<std::uint64_t>(77));
  EXPECT_EQ(s.last_shard(1), 0) << "pid 1 must have stolen from shard 0";
}

TEST(ShardedQueueSequential, PerShardFifoAndSteal) {
  sim::SimWorld world(2);
  ShardedMsQueue<SimP, reclaim::TaggedReclaimer<SimP>, 2> q(world, 2, 4);
  std::optional<std::uint64_t> r1, r2, r3;
  world.invoke(0, [&] {
    q.enqueue(0, 10);
    q.enqueue(0, 20);
    r1 = q.dequeue(0);
    r2 = q.dequeue(0);
  });
  world.run_to_completion(0);
  EXPECT_EQ(r1, std::optional<std::uint64_t>(10));
  EXPECT_EQ(r2, std::optional<std::uint64_t>(20));
  // A value enqueued on shard 0 is visible to a consumer homed on shard 1.
  world.invoke(0, [&] { q.enqueue(0, 30); });
  world.run_to_completion(0);
  world.invoke(1, [&] { r3 = q.dequeue(1); });
  world.run_to_completion(1);
  EXPECT_EQ(r3, std::optional<std::uint64_t>(30));
  EXPECT_EQ(q.last_shard(1), 0);
}

// --------------------------------------------- per-shard history checking

// Splits a history by the invoker's shard tags and checks each sub-history
// against Spec; also checks multiset conservation (every popped value was
// pushed at least as many times as it was popped).
template <class Spec>
void expect_sharded_contract(const std::vector<spec::Op>& ops,
                             const std::vector<int>& shard_of, int num_shards,
                             Method take_method) {
  ASSERT_EQ(ops.size(), shard_of.size());
  std::vector<std::vector<spec::Op>> by_shard(
      static_cast<std::size_t>(num_shards));
  for (std::size_t i = 0; i < ops.size(); ++i) {
    ASSERT_GE(shard_of[i], 0) << "op " << i << " missing its shard tag";
    ASSERT_LT(shard_of[i], num_shards);
    by_shard[static_cast<std::size_t>(shard_of[i])].push_back(ops[i]);
  }
  for (int s = 0; s < num_shards; ++s) {
    const auto& sub = by_shard[static_cast<std::size_t>(s)];
    const auto result = spec::check_linearizable<Spec>(sub, Spec::initial());
    EXPECT_TRUE(result.linearizable)
        << "shard " << s << " sub-history not linearizable\n"
        << spec::explain(sub, result);
  }
  std::map<std::uint64_t, long> balance;  // pushes minus pops, per value
  for (const auto& op : ops) {
    if (op.method != take_method && op.ret == 1) ++balance[op.arg];
  }
  for (const auto& op : ops) {
    if (op.method == take_method && op.ret != 0) {
      const std::uint64_t value = op.ret - 1;  // pack_opt inverse
      auto it = balance.find(value);
      ASSERT_TRUE(it != balance.end() && it->second > 0)
          << "popped value " << value << " never pushed (or popped twice)";
      --it->second;
    }
  }
}

std::vector<WorkloadOp> random_workload(int n, int ops, std::uint64_t seed,
                                        Method put, Method take) {
  util::Xoshiro256 rng(seed);
  std::vector<WorkloadOp> workload;
  for (int pid = 0; pid < n; ++pid) {
    for (int i = 0; i < ops; ++i) {
      if (rng.chance(1, 2)) {
        workload.push_back({pid, put, rng.below(100)});
      } else {
        workload.push_back({pid, take, 0});
      }
    }
  }
  return workload;
}

// --------------------------------------------- deterministic steal races

// p0 is homed on shard 0 and holds its one element; p1 (homed on shard 1)
// scans past its empty home shard and races p0's pop for that element.
// Step budget: shard-1 pop is 1 step (null head read); shard-0 pop is head
// read + next read + CAS. Pausing p1 after 3 steps leaves it poised on the
// CAS with a stale (index, tag) snapshot.
struct StealRace {
  using Stack = SweepShardedStack<TaggedHead, reclaim::TaggedReclaimer<SimP>, 2>;
  using Invoker = harness::ShardedStackInvoker<Stack>;

  sim::SimWorld world{2};
  spec::History history;
  std::unique_ptr<Invoker> invoker;

  StealRace() {
    invoker = std::make_unique<Invoker>(world, history,
                                        std::make_unique<Stack>(world, 2, 2));
  }

  void solo(const WorkloadOp& op) {
    invoker->invoke(op);
    world.run_to_completion(op.pid);
  }
};

TEST(ShardedStealRace, StealerWinsHomePopperScansOn) {
  StealRace t;
  t.solo({0, Method::kPush, 42});  // shard 0 now holds 42.

  // p1 starts pop: scans empty shard 1 (1 step), reads shard 0's head and
  // the node's next (2 more), pauses poised on the CAS.
  t.invoker->invoke({1, Method::kPop, 0});
  for (int i = 0; i < 3; ++i) t.world.step(1);

  // p0 starts its own pop of shard 0 and pauses at the same point (head
  // read + next read; its CAS not yet issued).
  t.invoker->invoke({0, Method::kPop, 0});
  t.world.step(0);
  t.world.step(0);

  // The stealer's CAS fires first and wins the element.
  t.world.run_to_completion(1);
  // The home popper's CAS fails, its retry sees the empty shard 0, and its
  // steal scan finds shard 1 empty too: it must report empty.
  t.world.run_to_completion(0);

  const auto ops = t.history.ops();
  ASSERT_EQ(ops.size(), 3u);
  std::uint64_t p0_ret = 0, p1_ret = 0;
  for (const auto& op : ops) {
    if (op.method != Method::kPop) continue;
    (op.pid == 0 ? p0_ret : p1_ret) = op.ret;
  }
  EXPECT_EQ(p1_ret, spec::pack_opt(true, 42)) << "the stealer must win";
  EXPECT_EQ(p0_ret, spec::pack_opt(false, 0))
      << "the home popper must observe every shard empty";
  expect_sharded_contract<spec::StackSpec>(ops, t.invoker->shard_of(), 2,
                                           Method::kPop);
}

TEST(ShardedStealRace, HomePopperWinsStealerScansOn) {
  StealRace t;
  t.solo({0, Method::kPush, 42});

  // Same pause point for the stealer...
  t.invoker->invoke({1, Method::kPop, 0});
  for (int i = 0; i < 3; ++i) t.world.step(1);

  // ...but this time the home popper runs to completion first.
  t.solo({0, Method::kPop, 0});

  // The stealer's stale CAS fails; its retry observes shard 0 empty and the
  // scan is exhausted: empty.
  t.world.run_to_completion(1);

  const auto ops = t.history.ops();
  std::uint64_t p0_ret = 0, p1_ret = 0;
  for (const auto& op : ops) {
    if (op.method != Method::kPop) continue;
    (op.pid == 0 ? p0_ret : p1_ret) = op.ret;
  }
  EXPECT_EQ(p0_ret, spec::pack_opt(true, 42)) << "the home popper must win";
  EXPECT_EQ(p1_ret, spec::pack_opt(false, 0));
  expect_sharded_contract<spec::StackSpec>(ops, t.invoker->shard_of(), 2,
                                           Method::kPop);
}

// --------------------------------------------- sweeps: shards × head × R

template <class Stack, int kShards>
void sharded_stack_sweep() {
  for (int n : {2, 3}) {
    for (std::uint64_t seed = 0; seed < 4; ++seed) {
      sim::SimWorld world(n);
      world.set_trace_enabled(false);
      spec::History history;
      harness::ShardedStackInvoker<Stack> invoker(
          world, history, std::make_unique<Stack>(world, n, 4));
      harness::ScheduleLog log;
      harness::drive_random_schedule(
          world, invoker, n,
          random_workload(n, 6, seed, Method::kPush, Method::kPop),
          seed * 811 + 17, &log);
      SCOPED_TRACE(::testing::Message() << "shards=" << kShards << " n=" << n
                                        << " seed=" << seed << "\n"
                                        << log.to_string());
      expect_sharded_contract<spec::StackSpec>(history.ops(),
                                               invoker.shard_of(), kShards,
                                               Method::kPop);
    }
  }
}

template <template <class, class, int> class StackT, class Head, class R>
void sharded_stack_sweep_over_shards() {
  sharded_stack_sweep<StackT<Head, R, 1>, 1>();
  sharded_stack_sweep<StackT<Head, R, 2>, 2>();
  sharded_stack_sweep<StackT<Head, R, 4>, 4>();
}

TEST(ShardedSweep, TaggedHeadTaggedReclaimer) {
  sharded_stack_sweep_over_shards<SweepShardedStack, TaggedHead,
                                  reclaim::TaggedReclaimer<SimP>>();
}
TEST(ShardedSweep, TaggedHeadLeakyReclaimer) {
  sharded_stack_sweep_over_shards<SweepShardedStack, TaggedHead,
                                  reclaim::LeakyReclaimer<SimP>>();
}
TEST(ShardedSweep, TaggedHeadHazardReclaimer) {
  sharded_stack_sweep_over_shards<SweepShardedStack, TaggedHead,
                                  reclaim::HazardPointerReclaimer<SimP>>();
}
TEST(ShardedSweep, TaggedHeadEpochReclaimer) {
  sharded_stack_sweep_over_shards<SweepShardedStack, TaggedHead,
                                  reclaim::EpochBasedReclaimer<SimP>>();
}
// Deferred reuse keeps even a raw CAS head safe, per shard exactly as
// unsharded (the reclaimer axis carries over with no cross-shard work).
TEST(ShardedSweep, RawHeadHazardReclaimer) {
  sharded_stack_sweep_over_shards<SweepShardedStack, RawHead,
                                  reclaim::HazardPointerReclaimer<SimP>>();
}

// LL/SC heads: one Figure-3 object per shard.
template <class R, int kShards>
struct LlscSweepAdapter : ShardedLlscStack<R, kShards> {
  using ShardedLlscStack<R, kShards>::ShardedLlscStack;
};
template <class Head /*ignored*/, class R, int kShards>
using LlscSweep = LlscSweepAdapter<R, kShards>;

TEST(ShardedSweep, LlscHeadTaggedReclaimer) {
  sharded_stack_sweep_over_shards<LlscSweep, TaggedHead,
                                  reclaim::TaggedReclaimer<SimP>>();
}

template <class R, int kShards>
void sharded_queue_sweep() {
  using Queue = ShardedMsQueue<SimP, R, kShards>;
  for (int n : {2, 3}) {
    for (std::uint64_t seed = 0; seed < 4; ++seed) {
      sim::SimWorld world(n);
      world.set_trace_enabled(false);
      spec::History history;
      harness::ShardedQueueInvoker<Queue> invoker(
          world, history, std::make_unique<Queue>(world, n, 4));
      harness::ScheduleLog log;
      harness::drive_random_schedule(
          world, invoker, n,
          random_workload(n, 6, seed, Method::kEnq, Method::kDeq),
          seed * 823 + 19, &log);
      SCOPED_TRACE(::testing::Message() << "shards=" << kShards << " n=" << n
                                        << " seed=" << seed << "\n"
                                        << log.to_string());
      expect_sharded_contract<spec::QueueSpec>(history.ops(),
                                               invoker.shard_of(), kShards,
                                               Method::kDeq);
    }
  }
}

TEST(ShardedSweep, QueueTaggedReclaimer) {
  sharded_queue_sweep<reclaim::TaggedReclaimer<SimP>, 1>();
  sharded_queue_sweep<reclaim::TaggedReclaimer<SimP>, 2>();
  sharded_queue_sweep<reclaim::TaggedReclaimer<SimP>, 4>();
}
TEST(ShardedSweep, QueueHazardReclaimer) {
  sharded_queue_sweep<reclaim::HazardPointerReclaimer<SimP>, 1>();
  sharded_queue_sweep<reclaim::HazardPointerReclaimer<SimP>, 2>();
  sharded_queue_sweep<reclaim::HazardPointerReclaimer<SimP>, 4>();
}
TEST(ShardedSweep, QueueEpochReclaimer) {
  sharded_queue_sweep<reclaim::EpochBasedReclaimer<SimP>, 2>();
}

// ------------------------------------------- Fast ≡ Counted determinism

// Token-serialized native workload (one thread moves at a time, so the
// schedule is a pure function of (n, rounds)): the platform policy changes
// layout, instrumentation and backoff — never results.
template <class P>
std::vector<std::uint64_t> tokenized_sharded_trace(int n, int rounds) {
  using Stack =
      ShardedTreiberStack<P, TaggedCasHead<P>, reclaim::TaggedReclaimer<P>, 2>;
  using Queue = ShardedMsQueue<P, reclaim::TaggedReclaimer<P>, 2>;
  typename P::Env env;
  Stack stack(env, n, Stack::make_heads(env, n), 8);
  Queue queue(env, n, 8);
  std::vector<std::uint64_t> trace(static_cast<std::size_t>(n) * rounds, 0);
  std::atomic<int> turn{0};
  std::vector<std::thread> threads;
  for (int pid = 0; pid < n; ++pid) {
    threads.emplace_back([&, pid] {
      for (int r = 0; r < rounds; ++r) {
        const int my_step = r * n + pid;
        while (turn.load() != my_step) std::this_thread::yield();
        std::uint64_t result = 0;
        switch ((pid + r) % 4) {
          case 0:
            result = stack.push(pid, static_cast<std::uint64_t>(my_step)) ? 1 : 0;
            break;
          case 1: {
            const auto v = stack.pop(pid);
            result = spec::pack_opt(v.has_value(), v.has_value() ? *v : 0);
            break;
          }
          case 2:
            result = queue.enqueue(pid, static_cast<std::uint64_t>(my_step)) ? 1 : 0;
            break;
          default: {
            const auto v = queue.dequeue(pid);
            result = spec::pack_opt(v.has_value(), v.has_value() ? *v : 0);
            break;
          }
        }
        trace[static_cast<std::size_t>(my_step)] = result;
        turn.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  return trace;
}

TEST(ShardedNativePolicy, FastMatchesCountedOnShardedWorkload) {
  using CountedP = native::NativePlatform<native::Counted>;
  using FastP = native::NativePlatform<native::Fast>;
  const auto counted = tokenized_sharded_trace<CountedP>(3, 48);
  const auto fast = tokenized_sharded_trace<FastP>(3, 48);
  EXPECT_EQ(counted, fast);
}

// ----------------------------------------------------- native stress

TEST(ShardedNativeStress, StackBalancedAccounting) {
  using Stack = ShardedTreiberStack<NativeP, TaggedCasHead<NativeP>,
                                    reclaim::TaggedReclaimer<NativeP>, 4>;
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 1500;
  typename NativeP::Env env;
  Stack stack(env, kThreads, Stack::make_heads(env, kThreads), 256);

  std::atomic<std::uint64_t> pushed_sum{0}, popped_sum{0};
  std::atomic<std::uint64_t> pushed_count{0}, popped_count{0};
  std::vector<std::thread> threads;
  for (int tid = 0; tid < kThreads; ++tid) {
    threads.emplace_back([&, tid] {
      util::Xoshiro256 rng(static_cast<std::uint64_t>(tid) + 1);
      for (int i = 0; i < kOpsPerThread; ++i) {
        if (rng.chance(1, 2)) {
          const std::uint64_t v = rng.below(1000) + 1;
          if (stack.push(tid, v)) {
            pushed_sum.fetch_add(v);
            pushed_count.fetch_add(1);
          }
        } else {
          const auto v = stack.pop(tid);
          if (v.has_value()) {
            popped_sum.fetch_add(*v);
            popped_count.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  // Quiescent drain: with no concurrency, an empty result means every
  // shard really is empty. Every pushed value must be popped exactly once.
  for (;;) {
    const auto v = stack.pop(0);
    if (!v.has_value()) break;
    popped_sum.fetch_add(*v);
    popped_count.fetch_add(1);
  }
  EXPECT_EQ(pushed_sum.load(), popped_sum.load());
  EXPECT_EQ(pushed_count.load(), popped_count.load());
}

TEST(ShardedNativeStress, StackHazardReclaimerBalancedAccounting) {
  // Raw CAS heads under deferred reclamation, sharded: the guard publish /
  // revalidate handshake runs per shard (what the TSan job watches).
  using Stack = ShardedTreiberStack<NativeP, RawCasHead<NativeP>,
                                    reclaim::HazardPointerReclaimer<NativeP>, 2>;
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 1000;
  typename NativeP::Env env;
  Stack stack(env, kThreads, Stack::make_heads(env, kThreads), 256);

  std::atomic<std::uint64_t> pushed_sum{0}, popped_sum{0};
  std::vector<std::thread> threads;
  for (int tid = 0; tid < kThreads; ++tid) {
    threads.emplace_back([&, tid] {
      util::Xoshiro256 rng(static_cast<std::uint64_t>(tid) + 7);
      for (int i = 0; i < kOpsPerThread; ++i) {
        if (rng.chance(1, 2)) {
          const std::uint64_t v = rng.below(1000) + 1;
          if (stack.push(tid, v)) pushed_sum.fetch_add(v);
        } else {
          const auto v = stack.pop(tid);
          if (v.has_value()) popped_sum.fetch_add(*v);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  for (;;) {
    const auto v = stack.pop(0);
    if (!v.has_value()) break;
    popped_sum.fetch_add(*v);
  }
  EXPECT_EQ(pushed_sum.load(), popped_sum.load());
}

TEST(ShardedNativeStress, QueueBalancedAccounting) {
  using Queue =
      ShardedMsQueue<NativeP, reclaim::TaggedReclaimer<NativeP>, 4>;
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 1000;
  typename NativeP::Env env;
  Queue queue(env, kThreads, 256);

  std::atomic<std::uint64_t> enq_sum{0}, deq_sum{0};
  std::atomic<std::uint64_t> enq_count{0}, deq_count{0};
  std::vector<std::thread> threads;
  for (int tid = 0; tid < kThreads; ++tid) {
    threads.emplace_back([&, tid] {
      util::Xoshiro256 rng(static_cast<std::uint64_t>(tid) + 11);
      for (int i = 0; i < kOpsPerThread; ++i) {
        if (rng.chance(1, 2)) {
          const std::uint64_t v = rng.below(1000) + 1;
          if (queue.enqueue(tid, v)) {
            enq_sum.fetch_add(v);
            enq_count.fetch_add(1);
          }
        } else {
          const auto v = queue.dequeue(tid);
          if (v.has_value()) {
            deq_sum.fetch_add(*v);
            deq_count.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  for (;;) {
    const auto v = queue.dequeue(0);
    if (!v.has_value()) break;
    deq_sum.fetch_add(*v);
    deq_count.fetch_add(1);
  }
  EXPECT_EQ(enq_sum.load(), deq_sum.load());
  EXPECT_EQ(enq_count.load(), deq_count.load());
}

}  // namespace
}  // namespace aba::structures
