// The ring-buffer family (structures/ring_buffer.h) — the workloads where
// the paper's ABA-prevention price varies by role structure:
//
//   * RingSequential — single-process sanity on the Counted native
//     platform: FIFO order across many wraps, full/empty refusal, the
//     power-of-two capacity rounding contract, and sub-word payloads.
//   * RingStepCount — the paper-facing claim, machine-checked against the
//     Counted platform's step/rmw ledgers: SpscRing performs ZERO shared
//     RMW per operation (Lamport's single-writer positions have nothing to
//     CAS), MpscRing pays exactly one CAS per push and none per pop, and
//     MpmcRing pays one CAS per side — the prevention price appearing
//     exactly where a position word acquires a second writer.
//   * RingMpmcSim — random-schedule sweeps on the simulator, every history
//     checked against the capacity-strict BoundedQueueSpec (a refused push
//     must linearize at a truly-full instant, a refused pop at a
//     truly-empty one).
//   * RingMpscSim — the same sweep role-constrained for MpscRing (pops
//     confined to the single consumer), push-heavy over tiny capacities so
//     the full boundary — and with it the MPSC stale-tail refusal window —
//     stays hot under every schedule.
//   * RingScripted — deterministic SimWorld schedules walking the
//     ABA-shaped cases by hand: a stale tail CAS held across a full ring
//     wrap must FAIL (the per-slot sequence is an unbounded tag, so the
//     recycled position can never look fresh); a pop parked between
//     claiming its position and bumping the slot sequence must make a
//     concurrent push RETRY, not refuse (the strict refusal contract); and
//     an MPSC producer whose tail read went stale (the consumer drove head
//     PAST it) must re-read and succeed — the unsigned occupancy underflow
//     must never surface as a full-report on a non-full ring.
//   * RingModelCheck — the DPOR-pruned schedule search over the ring_mpmc
//     fixture with spec verdicts on: no reachable interleaving of the
//     adversarial workload shapes produces a non-linearizable history.
//   * ShmRing — the same SpscRing construction walked by two PROCESSES
//     over a shared-memory arena (fork, attach, layout-hash handshake),
//     transferring values FIFO across the boundary. (Named off the Ring*
//     prefix on purpose: the TSan CI job's Ring* filter must not pick up a
//     forking test.)
//   * RingBatch — the batched verbs (push_n/pop_n, the
//     BatchedBoundedContainer refinement): sequential semantics (partial
//     batches are answers, not refusals; FIFO preserved across wraps), the
//     amortization ledger (ONE position update — and on MPSC/MPMC ONE CAS —
//     per batch, machine-checked like RingStepCount), and scripted SimWorld
//     schedules for the concurrent shapes (MPSC pop_n drains only the
//     contiguous published prefix; an MPMC batch reservation waits out a
//     parked peer's publish rather than losing elements).
//   * RingStress — real threads on the FastRelaxed native platform, where
//     the release-publish/acquire-read edges do the work seq_cst did in
//     the instrumented mode: per-producer FIFO and value conservation
//     under contention (also the TSan target for these structures).
#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "harness/adapters.h"
#include "harness/harness.h"
#include "native/native_platform.h"
#include "shm/shm_platform.h"
#include "shm/shm_segment.h"
#include "sim/schedule_search.h"
#include "sim/sim_platform.h"
#include "sim/sim_world.h"
#include "sim/types.h"
#include "spec/lin_checker.h"
#include "spec/specs.h"
#include "structures/concepts.h"
#include "structures/ring_buffer.h"
#include "util/rng.h"

namespace aba {
namespace {

using CountedP = native::NativePlatform<native::Counted>;
using FastP = native::NativePlatform<native::FastRelaxed>;

// The family speaks the uniform container verbs on every platform.
static_assert(structures::BoundedContainer<structures::SpscRing<CountedP>>);
static_assert(structures::BoundedContainer<structures::MpscRing<CountedP>>);
static_assert(structures::BoundedContainer<structures::MpmcRing<CountedP>>);
static_assert(structures::BoundedContainer<structures::MpmcRing<sim::SimPlatform>>);
static_assert(structures::BoundedContainer<structures::SpscRing<shm::ShmPlatform>>);

// The whole concurrent family additionally speaks the batched verbs.
static_assert(structures::BatchedBoundedContainer<structures::SpscRing<CountedP>>);
static_assert(structures::BatchedBoundedContainer<structures::MpscRing<CountedP>>);
static_assert(structures::BatchedBoundedContainer<structures::MpmcRing<CountedP>>);
static_assert(
    structures::BatchedBoundedContainer<structures::MpmcRing<sim::SimPlatform>>);
static_assert(
    structures::BatchedBoundedContainer<structures::SpscRing<shm::ShmPlatform>>);

// ---------------------------------------------------------------- sequential

template <class Ring>
void expect_fifo_across_wraps(Ring& ring) {
  const std::size_t cap = ring.capacity();
  EXPECT_EQ(ring.try_pop(1), std::nullopt);
  for (std::uint64_t round = 0; round < 3; ++round) {
    for (std::uint64_t i = 0; i < cap; ++i) {
      ASSERT_TRUE(ring.try_push(0, round * 100 + i));
    }
    EXPECT_FALSE(ring.try_push(0, 999));  // Full: refuse, don't overwrite.
    EXPECT_EQ(ring.approx_size(), cap);
    for (std::uint64_t i = 0; i < cap; ++i) {
      const auto v = ring.try_pop(1);
      ASSERT_TRUE(v.has_value());
      EXPECT_EQ(*v, round * 100 + i);
    }
    EXPECT_EQ(ring.try_pop(1), std::nullopt);
    EXPECT_EQ(ring.approx_size(), 0u);
  }
}

TEST(RingSequential, SpscFifoWrapAndBoundaries) {
  CountedP::Env env;
  structures::SpscRing<CountedP> ring(env, 2, 4);
  EXPECT_EQ(ring.capacity(), 4u);
  expect_fifo_across_wraps(ring);
}

TEST(RingSequential, MpscFifoWrapAndBoundaries) {
  CountedP::Env env;
  structures::MpscRing<CountedP> ring(env, 2, 4);
  expect_fifo_across_wraps(ring);
}

TEST(RingSequential, MpmcFifoWrapAndBoundaries) {
  CountedP::Env env;
  structures::MpmcRing<CountedP> ring(env, 2, 4);
  expect_fifo_across_wraps(ring);
}

TEST(RingSequential, CapacityRoundsUpToPowerOfTwoFloorTwo) {
  CountedP::Env env;
  // A 1-slot Vyukov ring aliases the push expectation with the pop
  // expectation, so the floor is 2 everywhere in the family.
  EXPECT_EQ(structures::SpscRing<CountedP>(env, 1, 1).capacity(), 2u);
  EXPECT_EQ(structures::MpscRing<CountedP>(env, 1, 3).capacity(), 4u);
  EXPECT_EQ(structures::MpmcRing<CountedP>(env, 1, 5).capacity(), 8u);
  EXPECT_EQ(structures::MpmcRing<CountedP>(env, 1, 8).capacity(), 8u);
}

TEST(RingSequential, SubWordTrivialPayloadRidesTheWord) {
  struct Point {
    std::int16_t x;
    std::int16_t y;
    bool operator==(const Point&) const = default;
  };
  CountedP::Env env;
  structures::SpscRing<CountedP, Point> ring(env, 2, 2);
  ASSERT_TRUE(ring.try_push(0, Point{-3, 7}));
  ASSERT_TRUE(ring.try_push(0, Point{100, -200}));
  EXPECT_EQ(ring.try_pop(1), (Point{-3, 7}));
  EXPECT_EQ(ring.try_pop(1), (Point{100, -200}));
  EXPECT_EQ(ring.try_pop(1), std::nullopt);
}

// ---------------------------------------------------------------- step shape
//
// The Counted platform's thread-local ledgers make the cost claims exact:
// rmw_counter() counts CAS steps only, a strict subset of step_counter().

TEST(RingStepCount, SpscZeroRmwPerOp) {
  CountedP::Env env;
  structures::SpscRing<CountedP> ring(env, 2, 8);
  const std::uint64_t steps0 = native::step_counter();
  const std::uint64_t rmws0 = native::rmw_counter();
  // Common path, wrapping many times...
  for (std::uint64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(ring.try_push(0, i));
    ASSERT_TRUE(ring.try_pop(1).has_value());
  }
  // ...and both refusal paths (the cache-miss re-reads are plain reads).
  for (std::uint64_t i = 0; i < 8; ++i) ASSERT_TRUE(ring.try_push(0, i));
  EXPECT_FALSE(ring.try_push(0, 99));
  for (std::uint64_t i = 0; i < 8; ++i) ASSERT_TRUE(ring.try_pop(1).has_value());
  EXPECT_EQ(ring.try_pop(1), std::nullopt);
  EXPECT_GT(native::step_counter(), steps0);  // The ops did take shared steps.
  EXPECT_EQ(native::rmw_counter(), rmws0);    // None of them was an RMW.
}

TEST(RingStepCount, MpscPushPaysOneCasPopPaysNone) {
  CountedP::Env env;
  structures::MpscRing<CountedP> ring(env, 2, 8);
  const std::uint64_t push_rmws0 = native::rmw_counter();
  for (std::uint64_t i = 0; i < 8; ++i) ASSERT_TRUE(ring.try_push(0, i));
  // Uncontended: exactly one tail CAS per push, nothing else.
  EXPECT_EQ(native::rmw_counter() - push_rmws0, 8u);
  const std::uint64_t pop_rmws0 = native::rmw_counter();
  for (std::uint64_t i = 0; i < 8; ++i) ASSERT_TRUE(ring.try_pop(1).has_value());
  EXPECT_EQ(ring.try_pop(1), std::nullopt);  // Empty check is reads only.
  EXPECT_EQ(native::rmw_counter(), pop_rmws0);  // The single consumer owns head.
}

TEST(RingStepCount, MpmcPaysOneCasPerSide) {
  CountedP::Env env;
  structures::MpmcRing<CountedP> ring(env, 2, 8);
  const std::uint64_t rmws0 = native::rmw_counter();
  for (std::uint64_t i = 0; i < 4; ++i) ASSERT_TRUE(ring.try_push(0, i));
  for (std::uint64_t i = 0; i < 4; ++i) ASSERT_TRUE(ring.try_pop(1).has_value());
  // Uncontended: one position CAS per operation — the full prevention price.
  EXPECT_EQ(native::rmw_counter() - rmws0, 8u);
}

// ------------------------------------------------------------- sim sweeps

// A seeded mixed workload in the kEnq/kDeq verb vocabulary; push arguments
// are distinct so the FIFO witness is unambiguous.
std::vector<harness::WorkloadOp> ring_workload(int num_processes,
                                               int ops_per_process,
                                               std::uint64_t seed,
                                               int push_bias_pct) {
  util::Xoshiro256 rng(seed);
  std::vector<harness::WorkloadOp> workload;
  std::uint64_t next_value = 1;
  for (int p = 0; p < num_processes; ++p) {
    for (int i = 0; i < ops_per_process; ++i) {
      if (rng.below(100) < static_cast<std::uint64_t>(push_bias_pct)) {
        workload.push_back({p, spec::Method::kEnq, next_value++});
      } else {
        workload.push_back({p, spec::Method::kDeq, 0});
      }
    }
  }
  return workload;
}

TEST(RingMpmcSim, LinearizableUnderRandomSchedules) {
  constexpr int kProcs = 3;
  // Small capacities keep the full boundary hot; the push-heavy mix hits
  // refusals, the pop-heavy mix hits empties.
  for (const std::size_t cap : {std::size_t{2}, std::size_t{4}}) {
    for (const int bias : {70, 35}) {
      for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        const auto factory = [cap, kProcs](sim::SimWorld& world,
                                           spec::History& history)
            -> std::unique_ptr<harness::Invoker> {
          return std::make_unique<
              harness::QueueInvoker<structures::MpmcRing<sim::SimPlatform>>>(
              world, history,
              std::make_unique<structures::MpmcRing<sim::SimPlatform>>(
                  world, kProcs, cap));
        };
        const auto workload =
            ring_workload(kProcs, 5, seed * 1000 + cap * 10 + bias, bias);
        const auto ops =
            harness::run_random_schedule(kProcs, factory, workload, seed);
        const auto result = spec::check_linearizable<spec::BoundedQueueSpec>(
            ops, spec::BoundedQueueSpec::initial(cap));
        ASSERT_TRUE(result.linearizable)
            << "cap=" << cap << " bias=" << bias << " seed=" << seed << "\n"
            << spec::explain(ops, result);
      }
    }
  }
}

// The MPSC counterpart: pops confined to pid 0 (MpscRing's single-consumer
// contract), producers push-heavy over tiny capacities so refusals — the
// path the fresh-head guard in MpscRing::try_push protects — fire under
// most schedules. A push that reads tail, loses the CPU while the consumer
// drains head past that read, and then refuses off the underflowed
// occupancy reports full on a non-full (possibly empty) ring; the
// BoundedQueueSpec check over every history is what convicts that shape.
TEST(RingMpscSim, LinearizableUnderRandomSchedules) {
  constexpr int kProcs = 3;  // pid 0 is the single consumer; pids 1+ produce.
  for (const std::size_t cap : {std::size_t{2}, std::size_t{4}}) {
    for (const int pushes_per_producer : {3, 5}) {
      for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        std::vector<harness::WorkloadOp> workload;
        std::uint64_t next_value = 1;
        for (int p = 1; p < kProcs; ++p) {
          for (int i = 0; i < pushes_per_producer; ++i) {
            workload.push_back({p, spec::Method::kEnq, next_value++});
          }
        }
        for (int i = 0; i < pushes_per_producer + 1; ++i) {
          workload.push_back({0, spec::Method::kDeq, 0});
        }
        const auto factory = [cap, kProcs](sim::SimWorld& world,
                                           spec::History& history)
            -> std::unique_ptr<harness::Invoker> {
          return std::make_unique<
              harness::QueueInvoker<structures::MpscRing<sim::SimPlatform>>>(
              world, history,
              std::make_unique<structures::MpscRing<sim::SimPlatform>>(
                  world, kProcs, cap));
        };
        const auto ops =
            harness::run_random_schedule(kProcs, factory, workload, seed);
        const auto result = spec::check_linearizable<spec::BoundedQueueSpec>(
            ops, spec::BoundedQueueSpec::initial(cap));
        ASSERT_TRUE(result.linearizable)
            << "cap=" << cap << " pushes=" << pushes_per_producer
            << " seed=" << seed << "\n"
            << spec::explain(ops, result);
      }
    }
  }
}

// --------------------------------------------------------------- scripted
//
// Hand-walked schedules against the exact words, the shapes the file
// comment in ring_buffer.h promises.

// A producer reads tail and its slot's sequence, then stalls while the
// other process wraps the ENTIRE capacity-2 ring (two pushes, two pops).
// The stalled CAS still expects tail == 0; with unbounded positions the
// wrap can never bring the word back to 0, so the CAS must fail — the
// recycled-slot ABA that corrupts a raw-CAS Treiber head is structurally
// absent here.
TEST(RingScripted, StaleTailCasFailsAfterFullWrap) {
  sim::SimWorld world(2);
  world.set_trace_enabled(true);
  structures::MpmcRing<sim::SimPlatform> ring(world, 2, 2);

  bool p0_pushed = false;
  world.invoke(0, [&] { p0_pushed = ring.try_push(0, 100); });
  // Execute the tail read and the slot-sequence read; leave process 0
  // POISED on its tail CAS with expected == 0.
  ASSERT_EQ(world.step(0), sim::MethodStatus::kPoised);
  ASSERT_EQ(world.step(0), sim::MethodStatus::kPoised);

  std::optional<std::uint64_t> a, b;
  world.invoke(1, [&] {
    EXPECT_TRUE(ring.try_push(1, 1));
    EXPECT_TRUE(ring.try_push(1, 2));
    a = ring.try_pop(1);
    b = ring.try_pop(1);
  });
  world.run_to_completion(1);
  world.run_to_completion(0);  // Executes the stale CAS, then retries.

  EXPECT_TRUE(p0_pushed);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(*a, 1u);
  EXPECT_EQ(*b, 2u);

  // Process 0's FIRST CAS in the trace is the stale one — it must have
  // failed (tail had moved to 4 by then, and positions never repeat).
  const auto trace = world.trace_copy();
  const auto first_cas = std::find_if(
      trace.begin(), trace.end(), [](const sim::StepRecord& rec) {
        return rec.pid == 0 && rec.kind == sim::OpKind::kCas;
      });
  ASSERT_NE(first_cas, trace.end());
  EXPECT_FALSE(first_cas->cas_success);
  EXPECT_EQ(first_cas->arg0, 0u);  // It still expected the pre-wrap tail.

  // The retried push landed at a fresh position: its value drains last.
  std::optional<std::uint64_t> c;
  world.invoke(1, [&] { c = ring.try_pop(1); });
  world.run_to_completion(1);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(*c, 100u);
}

// A pop claims its position (head CAS done) but parks BEFORE bumping the
// slot sequence. To a producer the slot looks round-behind — the stale-
// sequence signal that suggests "full" — but the fresh head read shows a
// slot is spoken for, so the push must RETRY, not refuse: refusing would
// linearize a full-report at an instant the ring held capacity-1 elements.
TEST(RingScripted, ClaimedButUnbumpedPopDoesNotFakeFull) {
  sim::SimWorld world(2);
  structures::MpmcRing<sim::SimPlatform> ring(world, 2, 2);

  bool setup_ok = false;
  world.invoke(1, [&] { setup_ok = ring.try_push(1, 7) && ring.try_push(1, 8); });
  world.run_to_completion(1);
  ASSERT_TRUE(setup_ok);

  // Park process 0 mid-pop: head read, seq read, head CAS, value read all
  // executed; the slot-sequence bump is announced but not performed.
  std::optional<std::uint64_t> popped;
  world.invoke(0, [&] { popped = ring.try_pop(0); });
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(world.step(0), sim::MethodStatus::kPoised);
  }

  bool p1_pushed = false;
  world.invoke(1, [&] { p1_pushed = ring.try_push(1, 9); });
  // Five full retry loops (tail read, seq read, head read each): were the
  // push willing to refuse off the stale sequence it would have completed.
  for (int i = 0; i < 15; ++i) world.step(1);
  EXPECT_FALSE(world.is_idle(1));

  world.run_to_completion(0);  // The pop publishes the freed slot...
  world.run_to_completion(1);  // ...and the parked push claims it.
  ASSERT_TRUE(popped.has_value());
  EXPECT_EQ(*popped, 7u);
  EXPECT_TRUE(p1_pushed);
}

// The MPSC stale-tail window, walked deterministically: a producer reads
// tail (t == 0) and parks BEFORE its head read. The other process then
// pushes twice and the consumer drains twice, driving head to 2 — PAST the
// parked producer's t. The unsigned occupancy t - head underflows to a
// huge value; a push willing to refuse off it would report full on an
// EMPTY ring, an instant the strict bounded spec cannot linearize. The
// fresh-head guard must instead classify t as stale, re-read the tail, and
// complete the push.
TEST(RingScripted, MpscStaleTailDoesNotFakeFull) {
  sim::SimWorld world(2);
  structures::MpscRing<sim::SimPlatform> ring(world, 2, 2);

  bool p0_pushed = false;
  world.invoke(0, [&] { p0_pushed = ring.try_push(0, 100); });
  // Execute the tail read only; park poised on the head read.
  ASSERT_EQ(world.step(0), sim::MethodStatus::kPoised);

  bool wrapped = false;
  std::optional<std::uint64_t> a, b;
  world.invoke(1, [&] {
    wrapped = ring.try_push(1, 1) && ring.try_push(1, 2);
    a = ring.try_pop(1);
    b = ring.try_pop(1);
  });
  world.run_to_completion(1);
  ASSERT_TRUE(wrapped);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());

  // Head (== 2) is now past the stale tail read (== 0): the resumed push
  // must retry off the fresh words and land, not refuse.
  world.run_to_completion(0);
  EXPECT_TRUE(p0_pushed);

  std::optional<std::uint64_t> c;
  world.invoke(1, [&] { c = ring.try_pop(1); });
  world.run_to_completion(1);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(*c, 100u);
}

// The contrast case: with no operation in flight, a full ring refuses a
// push immediately (and solo — refusal takes no help from other processes).
TEST(RingScripted, QuiescentFullRefusesSolo) {
  sim::SimWorld world(2);
  structures::MpmcRing<sim::SimPlatform> ring(world, 2, 2);
  bool setup_ok = false;
  world.invoke(1, [&] { setup_ok = ring.try_push(1, 7) && ring.try_push(1, 8); });
  world.run_to_completion(1);
  ASSERT_TRUE(setup_ok);

  bool pushed = true;
  world.invoke(0, [&] { pushed = ring.try_push(0, 9); });
  world.run_to_completion(0);
  EXPECT_FALSE(pushed);
}

// ------------------------------------------------------------ model check
//
// The schedule-search engine over the ring_mpmc fixture (a capacity-2
// MpmcRing on the simulator, reclaimer-free) with spec verdicts on: every
// explored interleaving of every adversarial workload shape must produce a
// history the capacity-strict BoundedQueueSpec accepts.
TEST(RingModelCheck, MpmcSurvivesSpecDrivenScheduleSearch) {
  const auto factory = search::reclaim_fixture("ring_mpmc");
  search::SearchOptions options;
  options.top_k = 1;
  options.context_bound = 3;
  options.max_executions = 256;
  options.check_spec = true;
  options.stop_on_violation = true;
  // The ring is not solo-terminating (a producer parked between claiming a
  // slot and publishing its sequence word makes a consumer spin), so bound
  // each path: without this cut the DFS deepens one frame per futile spin
  // grant until the stack overflows. 256 grants is ~5x a full clean run of
  // the widest candidate workload.
  options.max_grants_per_execution = 256;
  std::uint64_t executions = 0;
  for (const auto& candidate : search::workload_candidates("ring_mpmc", 2, 2)) {
    search::ScheduleExplorer explorer(factory, 2, candidate.workload,
                                      search::pool_pressure_cost, options);
    const auto result = explorer.run();
    executions += result.executions;
    ASSERT_TRUE(result.violations.empty())
        << candidate.name << ": " << result.violations.front().detail;
  }
  EXPECT_GT(executions, 0u);
}

// ------------------------------------------------------------ cross-process
//
// (Suite deliberately NOT named Ring*: the TSan CI job filters Ring* and
// must not pick up a forking test.)
TEST(ShmRing, SpscTransfersFifoAcrossFork) {
  constexpr std::uint64_t kCount = 512;
  constexpr std::size_t kCap = 8;
  const std::string name = shm::unique_segment_name();
  shm::ShmSegment seg = shm::ShmSegment::create(name, 1 << 20, 2);
  shm::ShmArena arena(seg, /*owner=*/true);
  shm::ShmPlatform::Env env{&arena, /*leases=*/nullptr, /*owner=*/true};
  structures::SpscRing<shm::ShmPlatform> ring(env, 2, kCap);
  seg.publish(arena.layout_hash());

  const pid_t child = ::fork();
  ASSERT_NE(child, -1);
  if (child == 0) {
    // Consumer process: attach, re-walk the identical construction
    // sequence (same words, same offsets), prove it with the layout hash,
    // then drain everything in order. Exit codes carry the verdict:
    // 0 ok, 1 order violation, 2 timed out waiting for the producer.
    shm::ShmSegment attached = shm::ShmSegment::attach(name);
    shm::ShmArena bound(attached, /*owner=*/false);
    shm::ShmPlatform::Env cenv{&bound, /*leases=*/nullptr, /*owner=*/false};
    structures::SpscRing<shm::ShmPlatform> consumer(cenv, 2, kCap);
    attached.verify_layout(bound.layout_hash());
    for (std::uint64_t expect = 0; expect < kCount; ++expect) {
      std::optional<std::uint64_t> v;
      for (int spin = 0; spin < 100000 && !v; ++spin) {
        v = consumer.try_pop(1);
        if (!v) ::usleep(50);
      }
      if (!v) ::_exit(2);
      if (*v != expect) ::_exit(1);
    }
    ::_exit(0);
  }

  for (std::uint64_t i = 0; i < kCount; ++i) {
    while (!ring.try_push(0, i)) ::usleep(50);
  }
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

// ----------------------------------------------------------------- batched
//
// The push_n/pop_n verbs (BatchedBoundedContainer): partial batches are
// answers rather than refusals, FIFO survives wraps, a batch of k moves
// under ONE position update (and on the CAS rings ONE CAS), and the two
// concurrent shapes the weaker batch contract carves out — the MPSC
// published-prefix cut and the MPMC transient peer-wait — hold under
// hand-walked SimWorld schedules.

template <class Ring>
void expect_batch_fifo(Ring& ring) {
  const std::size_t cap = ring.capacity();
  std::vector<std::uint64_t> in(cap + 2), out(cap + 2);
  std::uint64_t next = 0, expect = 0;
  for (int round = 0; round < 3; ++round) {
    for (std::size_t i = 0; i < in.size(); ++i) in[i] = next + i;
    // Oversized batch: exactly cap land — partial is the answer, and the
    // elements that land are the PREFIX of the input.
    ASSERT_EQ(ring.push_n(0, in.data(), in.size()), cap);
    next += cap;
    EXPECT_EQ(ring.push_n(0, in.data(), in.size()), 0u);  // Certified full.
    EXPECT_EQ(ring.approx_size(), cap);
    // Partial drain frees exactly that much space for the next batch...
    ASSERT_EQ(ring.pop_n(1, out.data(), 2), 2u);
    for (std::size_t i = 0; i < 2; ++i) EXPECT_EQ(out[i], expect++);
    for (std::size_t i = 0; i < in.size(); ++i) in[i] = next + i;
    ASSERT_EQ(ring.push_n(0, in.data(), in.size()), 2u);
    next += 2;
    // ...and an oversized pop drains everything, FIFO across the wrap.
    ASSERT_EQ(ring.pop_n(1, out.data(), out.size()), cap);
    for (std::size_t i = 0; i < cap; ++i) EXPECT_EQ(out[i], expect++);
    EXPECT_EQ(ring.pop_n(1, out.data(), out.size()), 0u);  // Certified empty.
    EXPECT_EQ(ring.approx_size(), 0u);
  }
  // The verbs interoperate: a single-op push drains through a batch pop.
  ASSERT_TRUE(ring.try_push(0, 777));
  ASSERT_EQ(ring.pop_n(1, out.data(), out.size()), 1u);
  EXPECT_EQ(out[0], 777u);
}

TEST(RingBatch, SpscSequentialFifoPartialAndWrap) {
  CountedP::Env env;
  structures::SpscRing<CountedP> ring(env, 2, 4);
  expect_batch_fifo(ring);
}

TEST(RingBatch, MpscSequentialFifoPartialAndWrap) {
  CountedP::Env env;
  structures::MpscRing<CountedP> ring(env, 2, 4);
  expect_batch_fifo(ring);
}

TEST(RingBatch, MpmcSequentialFifoPartialAndWrap) {
  CountedP::Env env;
  structures::MpmcRing<CountedP> ring(env, 2, 4);
  expect_batch_fifo(ring);
}

// The sequential member speaks the same vocabulary (minus the pid), with
// exact capacity and the peek() window the crash sweeps walk.
TEST(RingBatch, LocalRingBatchVerbsAndPeek) {
  structures::LocalRing<std::uint64_t> ring(3);  // Exact: no rounding.
  const std::uint64_t in[4] = {1, 2, 3, 4};
  std::uint64_t out[4] = {};
  EXPECT_EQ(ring.push_n(in, 4), 3u);  // Prefix lands, capacity is exact.
  EXPECT_EQ(ring.peek(0), 1u);
  EXPECT_EQ(ring.peek(2), 3u);
  EXPECT_EQ(ring.front(), 1u);
  EXPECT_EQ(ring.pop_n(out, 2), 2u);
  EXPECT_EQ(out[0], 1u);
  EXPECT_EQ(out[1], 2u);
  const std::uint64_t more[2] = {4, 5};
  EXPECT_EQ(ring.push_n(more, 2), 2u);  // Wraps the exact-capacity buffer.
  EXPECT_EQ(ring.peek(1), 4u);
  EXPECT_EQ(ring.pop_n(out, 4), 3u);
  EXPECT_EQ(out[0], 3u);
  EXPECT_EQ(out[1], 4u);
  EXPECT_EQ(out[2], 5u);
  EXPECT_EQ(ring.pop_n(out, 4), 0u);
}

// The amortization ledger, exact on the Counted platform. SPSC: a batch of
// k costs k slot writes plus ONE position write per side (plus at most one
// cache-refresh read) — still zero RMW. The fresh producer cache covers
// k = 6 <= cap = 8 without a head read, so the push is exactly 7 steps /
// 7 stores; the pop's stale tail cache forces the one refresh read: 8 steps.
TEST(RingBatch, SpscBatchPaysOnePositionWritePerSide) {
  CountedP::Env env;
  structures::SpscRing<CountedP> ring(env, 2, 8);
  std::uint64_t in[6] = {0, 1, 2, 3, 4, 5};
  std::uint64_t out[6] = {};
  const std::uint64_t steps0 = native::step_counter();
  const std::uint64_t stores0 = native::store_counter();
  const std::uint64_t rmws0 = native::rmw_counter();
  ASSERT_EQ(ring.push_n(0, in, 6), 6u);
  EXPECT_EQ(native::step_counter() - steps0, 7u);   // 6 slots + 1 tail write.
  EXPECT_EQ(native::store_counter() - stores0, 7u); // ...and nothing else.
  const std::uint64_t steps1 = native::step_counter();
  ASSERT_EQ(ring.pop_n(1, out, 6), 6u);
  EXPECT_EQ(native::step_counter() - steps1, 8u);  // +1 tail refresh read.
  EXPECT_EQ(native::rmw_counter(), rmws0);         // Zero RMW, batched too.
}

// MPSC: ONE tail CAS reserves all k positions (vs. k CASes single-op); the
// consumer's published-prefix drain stays RMW-free and frees the whole
// batch under one head write.
TEST(RingBatch, MpscBatchPaysOneCasForTheWholeBatch) {
  CountedP::Env env;
  structures::MpscRing<CountedP> ring(env, 2, 8);
  std::uint64_t in[6] = {0, 1, 2, 3, 4, 5};
  std::uint64_t out[6] = {};
  const std::uint64_t rmws0 = native::rmw_counter();
  ASSERT_EQ(ring.push_n(0, in, 6), 6u);
  EXPECT_EQ(native::rmw_counter() - rmws0, 1u);  // k = 6 elements, one CAS.
  const std::uint64_t steps0 = native::step_counter();
  ASSERT_EQ(ring.pop_n(1, out, 6), 6u);
  // 6 seq reads + 6 value reads + ONE head write, and no RMW at all.
  EXPECT_EQ(native::step_counter() - steps0, 13u);
  EXPECT_EQ(native::rmw_counter() - rmws0, 1u);
  for (std::uint64_t i = 0; i < 6; ++i) EXPECT_EQ(out[i], i);
  // Empty probe: the first unpublished sequence ends the batch in one read.
  const std::uint64_t steps1 = native::step_counter();
  EXPECT_EQ(ring.pop_n(1, out, 6), 0u);
  EXPECT_EQ(native::step_counter() - steps1, 1u);
}

// MPMC: one CAS per SIDE per batch — the full prevention price paid once
// for k elements instead of k times.
TEST(RingBatch, MpmcBatchPaysOneCasPerSide) {
  CountedP::Env env;
  structures::MpmcRing<CountedP> ring(env, 2, 8);
  std::uint64_t in[6] = {0, 1, 2, 3, 4, 5};
  std::uint64_t out[6] = {};
  const std::uint64_t rmws0 = native::rmw_counter();
  ASSERT_EQ(ring.push_n(0, in, 6), 6u);
  EXPECT_EQ(native::rmw_counter() - rmws0, 1u);
  ASSERT_EQ(ring.pop_n(1, out, 6), 6u);
  EXPECT_EQ(native::rmw_counter() - rmws0, 2u);
  for (std::uint64_t i = 0; i < 6; ++i) EXPECT_EQ(out[i], i);
}

// The batch contract's one deliberate weakening, walked by hand: a producer
// that reserved 3 positions with its single CAS but has published only the
// first parks mid-batch. The consumer's pop_n must drain exactly the
// contiguous published prefix — one element — and STOP at the reserved-but-
// unpublished slot rather than waiting it out (that is the single-op
// contract, not the batch one). After the producer resumes, the remainder
// drains in order: the cut never reorders or loses elements.
TEST(RingBatch, MpscPopNDrainsOnlyThePublishedPrefix) {
  sim::SimWorld world(2);
  structures::MpscRing<sim::SimPlatform> ring(world, 2, 4);

  const std::uint64_t in[3] = {10, 11, 12};
  std::size_t pushed = 0;
  world.invoke(0, [&] { pushed = ring.push_n(0, in, 3); });
  // tail read, head read, the ONE reserving CAS, slot0 value, slot0 seq:
  // position 0 is published, positions 1 and 2 are reserved only.
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(world.step(0), sim::MethodStatus::kPoised);
  }

  std::uint64_t out[4] = {};
  std::size_t got = 0;
  world.invoke(1, [&] { got = ring.pop_n(1, out, 4); });
  world.run_to_completion(1);  // Must complete — no waiting on the parked peer.
  EXPECT_EQ(got, 1u);
  EXPECT_EQ(out[0], 10u);

  world.run_to_completion(0);  // The producer publishes the rest...
  EXPECT_EQ(pushed, 3u);
  world.invoke(1, [&] { got = ring.pop_n(1, out, 4); });
  world.run_to_completion(1);  // ...and the remainder drains in order.
  ASSERT_EQ(got, 2u);
  EXPECT_EQ(out[0], 11u);
  EXPECT_EQ(out[1], 12u);
}

// The MPMC batch keeps the single-op transient-wait semantics instead: a
// pop_n that claimed two positions with its head CAS finds the first slot
// unpublished (the pusher parked between ITS reserving CAS and the
// publishes) and must wait the peer out — returning fewer than it claimed
// would lose the claimed elements forever.
TEST(RingBatch, MpmcPopNWaitsOutAParkedPushersPublish) {
  sim::SimWorld world(2);
  structures::MpmcRing<sim::SimPlatform> ring(world, 2, 4);

  const std::uint64_t in[2] = {1, 2};
  std::size_t pushed = 0;
  world.invoke(0, [&] { pushed = ring.push_n(0, in, 2); });
  // tail read, head read, reserving CAS — parked before any publish.
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(world.step(0), sim::MethodStatus::kPoised);
  }

  std::uint64_t out[2] = {};
  std::size_t got = 0;
  world.invoke(1, [&] { got = ring.pop_n(1, out, 2); });
  // The pop claims both positions, then spins on slot 0's sequence; were
  // it willing to abandon the claim it would have gone idle by now.
  for (int i = 0; i < 12; ++i) world.step(1);
  EXPECT_FALSE(world.is_idle(1));

  world.run_to_completion(0);  // Publish both...
  world.run_to_completion(1);  // ...and the parked batch completes whole.
  EXPECT_EQ(pushed, 2u);
  ASSERT_EQ(got, 2u);
  EXPECT_EQ(out[0], 1u);
  EXPECT_EQ(out[1], 2u);
}

// ---------------------------------------------------------------- stress

TEST(RingStress, SpscNativeTransfersInOrder) {
  FastP::Env env;
  structures::SpscRing<FastP> ring(env, 2, 64);
  constexpr std::uint64_t kCount = 200000;
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kCount; ++i) {
      while (!ring.try_push(0, i)) std::this_thread::yield();
    }
  });
  std::uint64_t expect = 0;
  bool in_order = true;
  while (expect < kCount) {
    const auto v = ring.try_pop(1);
    if (!v) {
      std::this_thread::yield();
      continue;
    }
    if (*v != expect) {
      in_order = false;
      break;
    }
    ++expect;
  }
  producer.join();
  EXPECT_TRUE(in_order);
  EXPECT_EQ(expect, kCount);
}

// Producer p pushes (p << 32 | seq) with seq strictly increasing. In any
// linearizable FIFO, each consumer's pops are a subsequence of the global
// pop order, so every consumer must see each producer's sequence numbers
// strictly increasing — and across consumers every value appears once.
void expect_streams_conserve_and_order(
    const std::vector<std::vector<std::uint64_t>>& streams, int num_producers,
    std::uint64_t per_producer) {
  std::vector<std::uint64_t> all;
  for (const auto& stream : streams) {
    std::vector<std::int64_t> last(static_cast<std::size_t>(num_producers), -1);
    for (const std::uint64_t v : stream) {
      const auto producer = static_cast<std::size_t>(v >> 32);
      const auto seq = static_cast<std::int64_t>(v & 0xffffffffu);
      ASSERT_LT(producer, last.size());
      EXPECT_GT(seq, last[producer]);
      last[producer] = seq;
      all.push_back(v);
    }
  }
  std::sort(all.begin(), all.end());
  ASSERT_EQ(all.size(), per_producer * static_cast<std::uint64_t>(num_producers));
  std::size_t idx = 0;
  for (std::uint64_t p = 0; p < static_cast<std::uint64_t>(num_producers); ++p) {
    for (std::uint64_t s = 0; s < per_producer; ++s) {
      EXPECT_EQ(all[idx++], (p << 32) | s);
    }
  }
}

TEST(RingStress, MpmcNativeConservesAndOrdersPerProducer) {
  FastP::Env env;
  constexpr int kProducers = 2;
  constexpr int kConsumers = 2;
  constexpr std::uint64_t kPerProducer = 50000;
  constexpr std::uint64_t kTotal = kPerProducer * kProducers;
  structures::MpmcRing<FastP> ring(env, kProducers + kConsumers, 16);

  std::atomic<std::uint64_t> consumed{0};
  std::vector<std::vector<std::uint64_t>> streams(kConsumers);
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&ring, p] {
      for (std::uint64_t s = 0; s < kPerProducer; ++s) {
        const std::uint64_t v = (static_cast<std::uint64_t>(p) << 32) | s;
        while (!ring.try_push(p, v)) std::this_thread::yield();
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&ring, &consumed, &streams, c] {
      auto& out = streams[static_cast<std::size_t>(c)];
      while (consumed.load(std::memory_order_relaxed) < kTotal) {
        const auto v = ring.try_pop(kProducers + c);
        if (v) {
          out.push_back(*v);
          consumed.fetch_add(1, std::memory_order_relaxed);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  expect_streams_conserve_and_order(streams, kProducers, kPerProducer);
}

TEST(RingStress, MpscNativeSingleConsumerSeesPerProducerOrder) {
  FastP::Env env;
  constexpr int kProducers = 3;
  constexpr std::uint64_t kPerProducer = 50000;
  constexpr std::uint64_t kTotal = kPerProducer * kProducers;
  structures::MpscRing<FastP> ring(env, kProducers + 1, 32);

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ring, p] {
      for (std::uint64_t s = 0; s < kPerProducer; ++s) {
        const std::uint64_t v = (static_cast<std::uint64_t>(p) << 32) | s;
        while (!ring.try_push(p, v)) std::this_thread::yield();
      }
    });
  }
  std::vector<std::vector<std::uint64_t>> streams(1);
  while (streams[0].size() < kTotal) {
    const auto v = ring.try_pop(kProducers);
    if (v) {
      streams[0].push_back(*v);
    } else {
      std::this_thread::yield();
    }
  }
  for (auto& t : producers) t.join();
  expect_streams_conserve_and_order(streams, kProducers, kPerProducer);
}

}  // namespace
}  // namespace aba
