// Model-checker tests (src/sim/schedule_search.h, PR 7):
//
//   * MUTATION HARNESS — the spec-driven search must convict the seeded
//     mutant reclaimer (reclaim/mutant.h: immediate FIFO reuse on a raw
//     CAS head, i.e. the classic ABA) within a small bounded budget, and
//     every shipped reclaimer must survive the *identical* budget clean.
//     The conviction is a replayable script whose replay re-produces the
//     failing verdict.
//   * DPOR REGRESSIONS — with pruning on, the bounded exhaustive search
//     must explore measurably fewer nodes and spend measurably fewer
//     replayed grants than PR 5's plain DFS while reaching the same peak
//     and the same conviction; with an unbounded context bound, sleep
//     sets + state caching must exhaust a space plain DFS cannot finish.
//   * CORPUS HYGIENE — every committed tests/schedules/*.sched golden
//     expect_peak is still what the search finds at the committed depth
//     (equality for plain schedules; the crash emitter picks a recovering
//     candidate from the top-K, so crash goldens assert containment).
//   * n>2 AND WORKLOAD SEARCH — three-process fixtures search and verify
//     clean, the outer workload search returns the argmax candidate and
//     stamps the winning shape into script meta, and crash grants compose
//     with DPOR + spec checking (conservation-only verdicts).
//   * LEASE-MUTANT ZOO (PR 10) — the shm-tier death-handshake mutants
//     (reclaim/mutant.h: LeaseMutation) are each convicted by a bounded
//     crash-enabled search at their committed budget, the convictions
//     replay deterministically, the shipped protocol twins survive the
//     identical budget shapes, and a searched (not scripted) mid-batch
//     crash on the pending-window reclaimer verifies clean while actually
//     exercising the survivor's re-home path.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "sim/schedule_search.h"
#include "spec/history.h"
#include "util/assert.h"

namespace aba::search {
namespace {

// The mutation-harness budget: identical for the mutant and every shipped
// reclaimer. Pool of 2 nodes/process makes index recycling reachable within
// a couple of storm cycles; context bound 3 covers the park → storm →
// resume → observe shape of a harmful ABA.
SearchOptions mutation_budget() {
  SearchOptions options;
  options.top_k = 1;
  options.context_bound = 3;
  options.max_executions = 256;
  options.check_spec = true;
  options.stop_on_violation = true;
  return options;
}
constexpr int kMutationPool = 2;
constexpr int kMutationCycles = 2;

// Runs the spec-driven search over every workload candidate and returns
// the first conviction (empty detail if the fixture survives them all).
struct SweepOutcome {
  std::string convicted_workload;
  ScheduleScript conviction;
  std::string detail;
  std::uint64_t executions = 0;
};

SweepOutcome sweep_workloads(const std::string& fixture_name) {
  SweepOutcome outcome;
  const auto factory = reclaim_fixture(fixture_name, kMutationPool);
  for (const auto& candidate :
       workload_candidates(fixture_name, 2, kMutationCycles)) {
    ScheduleExplorer explorer(factory, 2, candidate.workload,
                              pool_pressure_cost, mutation_budget());
    const SearchResult result = explorer.run();
    outcome.executions += result.executions;
    if (!result.violations.empty()) {
      outcome.convicted_workload = candidate.name;
      outcome.conviction = result.violations[0].script;
      outcome.detail = result.violations[0].detail;
      return outcome;
    }
  }
  return outcome;
}

TEST(MutantCatch, SpecSearchConvictsTheMutantReclaimer) {
  const SweepOutcome outcome = sweep_workloads("stack_mutant_tagged");
  ASSERT_FALSE(outcome.convicted_workload.empty())
      << "the seeded ABA mutant survived every workload candidate ("
      << outcome.executions << " schedules explored)";
  EXPECT_NE(outcome.detail.find("NOT linearizable"), std::string::npos)
      << outcome.detail;

  // The conviction is evidence, not an anecdote: replaying the script on a
  // fresh fixture must re-produce a failing verdict.
  const ReplayResult replay =
      ScheduleExplorer::replay(reclaim_fixture("stack_mutant_tagged",
                                               kMutationPool),
                               outcome.conviction, pool_pressure_cost);
  EXPECT_TRUE(replay.verdict.checked);
  EXPECT_FALSE(replay.verdict.ok) << "conviction did not replay";
}

TEST(MutantCatch, AllShippedStackReclaimersSurviveTheIdenticalBudget) {
  for (const std::string& name :
       {std::string("stack_hazard"), std::string("stack_hazard_cached"),
        std::string("stack_epoch"), std::string("stack_epoch_deferred"),
        std::string("stack_tagged"), std::string("stack_leaky")}) {
    SCOPED_TRACE(name);
    const SweepOutcome outcome = sweep_workloads(name);
    EXPECT_TRUE(outcome.convicted_workload.empty())
        << name << " convicted on " << outcome.convicted_workload << ":\n"
        << outcome.detail;
  }
}

// ----------------------------------------------- lease-mutant zoo (PR 10)
//
// The shm-tier mutants each break one leg of the suspect → confirm →
// seize/veto/quarantine death handshake (src/shm/leased_reclaimer.h):
//
//   kStaleConfirm  confirms a suspicion against a stale scan count, so a
//                  *live* parked reader's lease is seized and its guarded
//                  node freed under it;
//   kNoQuarantine  frees a dead peer's in-flight allocation directly —
//                  the node may already be linked into the structure;
//   kNoRestamp     re-homes a mid-retire orphan without re-stamping it, so
//                  the epoch collector frees it against a stale stamp
//                  while a reader still holds a pre-crash snapshot of it.
//
// Each budget below is the committed one (schedule_search_demo --convict,
// stamped into tests/schedules/*_leased_mutant_*.crash.sched meta). The
// no_restamp channel is unreachable for the blind fewest-ops-first DFS
// order — its budget stages the opening (the stormer's first two pushes,
// then a reader parked mid-pop) as a search prelude; the searcher still
// has to discover the kill point and every suffix interleaving itself.
struct LeaseBudget {
  std::string mutant;
  std::string shipped_twin;  // Same protocol with the mutation off.
  int procs = 2;
  int cycles = 4;
  std::string workload = "storm";
  std::vector<int> prelude;
  std::uint64_t max_executions = 20000;
};

std::vector<int> no_restamp_prelude() {
  std::vector<int> grants(16, 0);  // Stormer: two pushes staged.
  grants.insert(grants.end(), 6, 2);  // Reader: parked mid-pop, snapshot held.
  return grants;
}

LeaseBudget stale_confirm_budget() {
  return {"stack_leased_mutant_stale_confirm", "stack_leased_hazard",
          2, 4, "storm", {}, 20000};
}
LeaseBudget no_quarantine_budget() {
  return {"stack_leased_mutant_no_quarantine", "stack_leased_hazard",
          2, 5, "crossed_storm", {}, 20000};
}
LeaseBudget no_restamp_budget() {
  return {"stack_leased_mutant_no_restamp", "stack_leased_epoch",
          3, 3, "storm", no_restamp_prelude(), 20000};
}

SearchResult run_lease_search(const std::string& fixture_name,
                              const LeaseBudget& budget) {
  SearchOptions options;
  options.top_k = 1;
  options.context_bound = 3;
  options.max_executions = budget.max_executions;
  options.max_grants = 1ull << 30;  // Let max_executions be the real budget.
  options.max_crashes = 1;
  options.check_spec = true;
  options.stop_on_violation = true;
  options.prelude = budget.prelude;
  const auto candidates =
      workload_candidates(fixture_name, budget.procs, budget.cycles);
  const auto shape = std::find_if(candidates.begin(), candidates.end(),
                                  [&](const WorkloadCandidate& c) {
                                    return c.name == budget.workload;
                                  });
  ABA_CHECK_MSG(shape != candidates.end(), "unknown lease-budget workload");
  ScheduleExplorer explorer(reclaim_fixture(fixture_name, kMutationPool),
                            budget.procs, shape->workload, pool_pressure_cost,
                            options);
  return explorer.run();
}

void expect_lease_conviction(const LeaseBudget& budget) {
  const SearchResult result = run_lease_search(budget.mutant, budget);
  ASSERT_TRUE(result.violation_found())
      << budget.mutant << " survived its committed budget ("
      << result.executions << " schedules explored)";
  const ScheduleScript& script = result.violations[0].script;
  EXPECT_EQ(std::count_if(script.grants.begin(), script.grants.end(),
                          is_crash_grant),
            1)
      << "a lease conviction needs exactly the one allowed crash";

  // The conviction is evidence: two fresh replays must both re-produce the
  // failing verdict and agree bit-for-bit.
  const auto factory = reclaim_fixture(budget.mutant, kMutationPool);
  const ReplayResult first =
      ScheduleExplorer::replay(factory, script, pool_pressure_cost);
  const ReplayResult second =
      ScheduleExplorer::replay(factory, script, pool_pressure_cost);
  EXPECT_TRUE(first.verdict.checked);
  EXPECT_FALSE(first.verdict.ok) << "conviction did not replay";
  EXPECT_EQ(first.verdict.detail, result.violations[0].detail);
  EXPECT_EQ(first.trace.size(), second.trace.size());
  EXPECT_EQ(first.verdict.detail, second.verdict.detail);
  EXPECT_EQ(first.peak_cost, second.peak_cost);
}

TEST(LeaseMutantCatch, StaleConfirmSeizesALiveLease) {
  expect_lease_conviction(stale_confirm_budget());
}

TEST(LeaseMutantCatch, NoQuarantineFreesAPossiblyLinkedNode) {
  expect_lease_conviction(no_quarantine_budget());
}

TEST(LeaseMutantCatch, NoRestampFreesAnOrphanUnderAParkedReader) {
  expect_lease_conviction(no_restamp_budget());
}

TEST(LeaseMutantCatch, ShippedTwinsSurviveTheIdenticalBudgetShapes) {
  // Full-budget survival of all seven shipped leased fixtures is the CI
  // model-check job's (schedule_search_demo --convict over the shipped
  // names — 20000-execution budgets run for minutes). Here each mutant's
  // protocol twin gets the identical budget *shape* — same processes,
  // pool, cycles, workload, context bound, crash allowance, prelude — with
  // the execution cap lowered to keep the suite fast. Every mutant above
  // convicts well inside this cap, so a clean pass is still discriminating.
  for (LeaseBudget budget : {stale_confirm_budget(), no_quarantine_budget(),
                             no_restamp_budget()}) {
    SCOPED_TRACE(budget.shipped_twin + " under the " + budget.mutant +
                 " budget");
    budget.max_executions = 2000;
    const SearchResult result =
        run_lease_search(budget.shipped_twin, budget);
    EXPECT_FALSE(result.violation_found())
        << (result.violations.empty() ? std::string()
                                      : result.violations[0].detail);
    EXPECT_GT(result.executions, 0u);
  }
}

// ------------------------------------------------------ DPOR regressions

TEST(DporRegression, BoundedExhaustiveSearchPrunesNodesAndReplays) {
  // The full bounded space of the mutant's convicting workload, explored
  // to exhaustion with and without pruning. Both must convict and agree on
  // the peak; DPOR must do it in several-fold fewer nodes/executions and
  // fewer replayed grants (the node-budget fix: the live runner rides down
  // the preferred path, visited-state pruning cuts revisited subtrees).
  const auto factory = reclaim_fixture("stack_mutant_tagged", kMutationPool);
  const auto candidates =
      workload_candidates("stack_mutant_tagged", 2, kMutationCycles);
  const auto double_storm =
      std::find_if(candidates.begin(), candidates.end(),
                   [](const WorkloadCandidate& c) {
                     return c.name == "double_storm";
                   });
  ASSERT_NE(double_storm, candidates.end());

  SearchResult results[2];
  for (const bool dpor : {true, false}) {
    SearchOptions options = mutation_budget();
    options.max_executions = 20000;
    options.stop_on_violation = false;  // Exhaust; don't stop at the first.
    options.dpor = dpor;
    ScheduleExplorer explorer(factory, 2, double_storm->workload,
                              pool_pressure_cost, options);
    results[dpor ? 0 : 1] = explorer.run();
  }
  const SearchResult& pruned = results[0];
  const SearchResult& plain = results[1];

  ASSERT_FALSE(pruned.budget_exhausted);
  ASSERT_FALSE(plain.budget_exhausted);
  EXPECT_TRUE(pruned.violation_found());
  EXPECT_TRUE(plain.violation_found());
  ASSERT_NE(pruned.top(), nullptr);
  ASSERT_NE(plain.top(), nullptr);
  EXPECT_EQ(pruned.top()->peak_cost, plain.top()->peak_cost);

  EXPECT_GT(pruned.pruned_states, 0u);
  EXPECT_LE(pruned.nodes * 4, plain.nodes)
      << "DPOR node reduction regressed (" << pruned.nodes << " vs "
      << plain.nodes << ")";
  EXPECT_LE(pruned.executions * 4, plain.executions);
  EXPECT_LE(pruned.replayed_grants * 2, plain.replayed_grants)
      << "prefix-replay cost regressed (" << pruned.replayed_grants << " vs "
      << plain.replayed_grants << ")";
}

TEST(DporRegression, UnboundedSearchExhaustsWherePlainDfsCannot) {
  // With no preemption budget, sleep sets engage (they are only sound
  // there — see schedule_search.h). DPOR must exhaust the full interleaving
  // space of a small storm; plain DFS must still be churning when its
  // execution budget runs dry, having entered more junctures and found
  // nothing better.
  const auto factory = reclaim_fixture("stack_epoch");
  const auto workload = storm_workload("stack_epoch", 2, 1);

  SearchOptions options;
  options.top_k = 1;
  options.context_bound = kUnboundedContextBound;
  options.max_grants = 100000000;

  options.max_executions = 100000;
  ScheduleExplorer pruned_explorer(factory, 2, workload,
                                   retired_unreclaimed_cost, options);
  const SearchResult pruned = pruned_explorer.run();

  options.dpor = false;
  options.max_executions = 1000;
  ScheduleExplorer plain_explorer(factory, 2, workload,
                                  retired_unreclaimed_cost, options);
  const SearchResult plain = plain_explorer.run();

  EXPECT_FALSE(pruned.budget_exhausted)
      << "DPOR failed to exhaust the unbounded space in "
      << pruned.executions << " executions";
  EXPECT_TRUE(plain.budget_exhausted)
      << "plain DFS finished — the fixture is too small to discriminate";
  EXPECT_GT(pruned.pruned_sleep, 0u) << "sleep sets never engaged";
  EXPECT_LT(pruned.nodes, plain.nodes);
  ASSERT_NE(pruned.top(), nullptr);
  ASSERT_NE(plain.top(), nullptr);
  // Exhaustive-with-pruning must not miss the peak the budgeted plain
  // search can reach.
  EXPECT_GE(pruned.top()->peak_cost, plain.top()->peak_cost);
}

// --------------------------------------------------------- corpus hygiene

std::vector<std::filesystem::path> corpus_files() {
  std::vector<std::filesystem::path> files;
  const std::filesystem::path dir(ABA_SCHEDULE_DIR);
  if (std::filesystem::exists(dir)) {
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
      if (entry.path().extension() == ".sched") files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(CorpusHygiene, GoldenPeaksAreStillTheSearchMaxima) {
  // Re-runs the search each corpus schedule was found by — same workload,
  // same cost, the committed search depth — and checks the golden
  // expect_peak is still what the search attains. A plain schedule's
  // golden must match the search maximum exactly (a higher search result
  // means the golden went stale; lower means the searcher regressed). The
  // crash emitter commits the first *recovering* top-K candidate, not
  // necessarily the argmax, so crash goldens assert the search still
  // reaches at least the committed peak.
  const auto files = corpus_files();
  ASSERT_FALSE(files.empty());
  for (const auto& path : files) {
    SCOPED_TRACE(path.filename().string());
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream buffer;
    buffer << in.rdbuf();
    const auto script = ScheduleScript::parse(buffer.str());
    ASSERT_TRUE(script.has_value());
    // Lease-mutant convictions carry expect_verdict instead of expect_peak;
    // their hygiene check (re-running the recorded conviction search) is
    // ConvictionScriptsStillConvictWithinTheirRecordedBudget below.
    if (script->meta.count("expect_verdict")) continue;
    ASSERT_TRUE(script->meta.count("fixture"));
    ASSERT_TRUE(script->meta.count("cost"));
    ASSERT_TRUE(script->meta.count("expect_peak"));

    const double golden = std::stod(script->meta.at("expect_peak"));
    const bool is_crash_script = script->meta.count("crashes") &&
                                 std::stoi(script->meta.at("crashes")) > 0;

    // The committed search depth (examples/schedule_search_demo.cpp).
    SearchOptions options;
    options.context_bound = 3;
    if (is_crash_script) {
      options.top_k = 8;
      options.max_executions = 48;
      options.max_crashes = 1;
    } else {
      options.top_k = 3;
      options.max_executions = 128;
    }
    ScheduleExplorer explorer(reclaim_fixture(script->meta.at("fixture")),
                              script->num_processes, script->workload,
                              cost_by_name(script->meta.at("cost")), options);
    const SearchResult result = explorer.run();
    ASSERT_NE(result.top(), nullptr);
    if (is_crash_script) {
      EXPECT_GE(result.top()->peak_cost, golden)
          << "search no longer reaches the committed crash peak";
    } else {
      EXPECT_EQ(result.top()->peak_cost, golden)
          << "golden peak went stale or the searcher regressed";
    }
  }
}

TEST(CorpusHygiene, ConvictionScriptsStillConvictWithinTheirRecordedBudget) {
  // A committed conviction script is a *search certificate*, not just a
  // replayable anecdote: its meta records the full budget of the search
  // that found it (search_context_bound / search_executions /
  // search_crashes / search_cycles, plus search_prelude — the staged
  // prefix, recoverable as the script's own leading grants). Re-running
  // that exact search must convict again without exceeding the recorded
  // execution budget (≥ semantics: finding it sooner is fine; needing more
  // schedules than committed means the searcher or the mutant regressed).
  int convictions_seen = 0;
  for (const auto& path : corpus_files()) {
    SCOPED_TRACE(path.filename().string());
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream buffer;
    buffer << in.rdbuf();
    const auto script = ScheduleScript::parse(buffer.str());
    ASSERT_TRUE(script.has_value());
    if (!script->meta.count("expect_verdict")) continue;
    ++convictions_seen;
    ASSERT_EQ(script->meta.at("expect_verdict"), "violation");
    for (const char* key :
         {"fixture", "cost", "workload", "pool", "search_context_bound",
          "search_executions", "search_crashes", "search_cycles"}) {
      ASSERT_TRUE(script->meta.count(key)) << "conviction meta missing " << key;
    }
    const auto factory = reclaim_fixture(script->meta.at("fixture"),
                                         std::stoi(script->meta.at("pool")));
    const CostFn cost = cost_by_name(script->meta.at("cost"));

    // The committed script still replays to the failing verdict,
    // deterministically.
    const ReplayResult first = ScheduleExplorer::replay(factory, *script, cost);
    const ReplayResult second =
        ScheduleExplorer::replay(factory, *script, cost);
    EXPECT_TRUE(first.verdict.checked);
    EXPECT_FALSE(first.verdict.ok) << "committed conviction no longer replays";
    EXPECT_EQ(first.verdict.detail, second.verdict.detail);
    EXPECT_EQ(first.trace.size(), second.trace.size());

    // The recorded search still finds it within budget.
    SearchOptions options;
    options.top_k = 1;
    options.context_bound = std::stoi(script->meta.at("search_context_bound"));
    options.max_executions = std::stoull(script->meta.at("search_executions"));
    options.max_grants = 1ull << 30;
    options.max_crashes = std::stoi(script->meta.at("search_crashes"));
    options.check_spec = true;
    options.stop_on_violation = true;
    if (script->meta.count("search_prelude")) {
      const std::size_t staged =
          std::stoul(script->meta.at("search_prelude"));
      ASSERT_LE(staged, script->grants.size());
      options.prelude.assign(script->grants.begin(),
                             script->grants.begin() +
                                 static_cast<std::ptrdiff_t>(staged));
    }
    const auto candidates =
        workload_candidates(script->meta.at("fixture"), script->num_processes,
                            std::stoi(script->meta.at("search_cycles")));
    const auto shape = std::find_if(candidates.begin(), candidates.end(),
                                    [&](const WorkloadCandidate& c) {
                                      return c.name ==
                                             script->meta.at("workload");
                                    });
    ASSERT_NE(shape, candidates.end());
    ScheduleExplorer explorer(factory, script->num_processes, shape->workload,
                              cost, options);
    const SearchResult result = explorer.run();
    EXPECT_TRUE(result.violation_found())
        << "the recorded search budget no longer convicts ("
        << result.executions << " schedules explored)";
    EXPECT_LE(result.executions,
              std::stoull(script->meta.at("search_executions")));
  }
  EXPECT_EQ(convictions_seen, 3)
      << "expected the three committed lease-mutant convictions";
}

// ------------------------------------------- n>2, workloads, crash compose

TEST(ModelCheck, ThreeProcessSpecSearchRunsClean) {
  // Two parked readers against the storm: the n=3 shape the CI job runs
  // under its time budget. Spec verdicts on; every shipped fixture must
  // explore its budget without a violation.
  for (const std::string& name :
       {std::string("stack_hazard_cached"), std::string("queue_epoch"),
        std::string("queue_leased_epoch"),
        std::string("stack_leased_hazard_cached")}) {
    SCOPED_TRACE(name);
    SearchOptions options;
    options.top_k = 3;
    options.context_bound = 2;
    options.max_executions = 96;
    options.check_spec = true;
    ScheduleExplorer explorer(reclaim_fixture(name), 3,
                              storm_workload(name, 3, 8),
                              retired_unreclaimed_cost, options);
    const SearchResult result = explorer.run();
    EXPECT_TRUE(result.violations.empty());
    ASSERT_NE(result.top(), nullptr);
    EXPECT_GT(result.top()->peak_cost, 0.0);

    // The found worst case replays to the same peak with a clean verdict.
    const ReplayResult replay = ScheduleExplorer::replay(
        reclaim_fixture(name), result.top()->script, retired_unreclaimed_cost);
    EXPECT_EQ(replay.peak_cost, result.top()->peak_cost);
    EXPECT_TRUE(replay.verdict.checked);
    EXPECT_TRUE(replay.verdict.ok) << replay.verdict.detail;
  }
}

TEST(ModelCheck, WorkloadSearchReturnsArgmaxAndStampsMeta) {
  SearchOptions options;
  options.top_k = 2;
  options.context_bound = 3;
  options.max_executions = 48;
  const auto candidates = workload_candidates("stack_hazard_cached", 2, 6);
  const WorkloadSearchResult ws =
      search_workloads(reclaim_fixture("stack_hazard_cached"), 2, candidates,
                       retired_unreclaimed_cost, options);

  ASSERT_EQ(ws.peaks.size(), candidates.size());
  ASSERT_NE(ws.best.top(), nullptr);
  double max_peak = 0;
  for (const auto& [name, peak] : ws.peaks) max_peak = std::max(max_peak, peak);
  EXPECT_EQ(ws.best.top()->peak_cost, max_peak)
      << "best workload is not the argmax";
  bool named = false;
  for (const auto& [name, peak] : ws.peaks) {
    if (name == ws.best_name) {
      named = true;
      EXPECT_EQ(peak, ws.best.top()->peak_cost);
    }
  }
  EXPECT_TRUE(named) << ws.best_name;
  for (const FoundSchedule& found : ws.best.best) {
    ASSERT_TRUE(found.script.meta.count("workload"));
    EXPECT_EQ(found.script.meta.at("workload"), ws.best_name);
  }
}

TEST(ModelCheck, CompositeCostIsSearchableAndNamed) {
  // The epoch fixture under the composite cost: a frozen epoch AND a retire
  // backlog must coincide for a nonzero score, and the storm makes both
  // happen. Also pins the cost_by_name registry entry.
  SearchOptions options;
  options.top_k = 1;
  options.context_bound = 3;
  options.max_executions = 64;
  ScheduleExplorer explorer(reclaim_fixture("stack_epoch"), 2,
                            storm_workload("stack_epoch", 2, 8),
                            cost_by_name("epoch_lag_backlog"), options);
  const SearchResult result = explorer.run();
  ASSERT_NE(result.top(), nullptr);
  EXPECT_GT(result.top()->peak_cost, 0.0)
      << "the composite cost never fired on an epoch storm";
}

TEST(ModelCheck, CrashGrantsComposeWithDporAndSpecVerdicts) {
  // One crash allowed, DPOR on, spec checking on: crash histories are
  // checked for conservation only (the victim's pending op may have taken
  // effect without completing), so a correct reclaimer explores clean; the
  // search must actually exercise crash grants along the way.
  SearchOptions options;
  options.top_k = 4;
  options.context_bound = 3;
  options.max_executions = 48;
  options.max_crashes = 1;
  options.check_spec = true;
  ScheduleExplorer explorer(reclaim_fixture("stack_epoch"), 2,
                            storm_workload("stack_epoch", 2, 8),
                            retired_unreclaimed_cost, options);
  const SearchResult result = explorer.run();
  EXPECT_TRUE(result.violations.empty())
      << (result.violations.empty() ? "" : result.violations[0].detail);
  bool saw_crash_schedule = false;
  for (const FoundSchedule& found : result.best) {
    saw_crash_schedule =
        saw_crash_schedule ||
        std::any_of(found.script.grants.begin(), found.script.grants.end(),
                    [](int g) { return is_crash_grant(g); });
  }
  EXPECT_TRUE(saw_crash_schedule)
      << "crash-enabled search surfaced no crash schedule in its top-K";
}

TEST(ModelCheck, SearchedMidBatchCrashReHomesThePendingWindow) {
  // stack_leased_epoch_batched routes every retire through a pending window
  // that is staged before the chunk stamp (PR 9); a victim killed between
  // staging and stamping leaves window slots only the survivor's
  // drain_dead re-home path can recover. This is a *searched* test, not a
  // scripted one: the explorer chooses its own crash points (every
  // mid-retire poise is inside that window for the batched reclaimer) and
  // every explored schedule must verify clean. At least one surfaced crash
  // schedule must actually have exercised the expropriation path, and its
  // final accounting must not mint nodes: free + retired + quarantined +
  // in-flight can never exceed the pool (the remainder is
  // structure-resident).
  SearchOptions options;
  options.top_k = 8;
  options.context_bound = 3;
  options.max_executions = 400;
  options.max_crashes = 1;
  options.check_spec = true;
  const auto factory =
      reclaim_fixture("stack_leased_epoch_batched", kMutationPool);
  ScheduleExplorer explorer(
      factory, 2, storm_workload("stack_leased_epoch_batched", 2, 6),
      pool_pressure_cost, options);
  const SearchResult result = explorer.run();
  EXPECT_TRUE(result.violations.empty())
      << (result.violations.empty() ? std::string()
                                    : result.violations[0].detail);

  bool saw_expropriation = false;
  for (const FoundSchedule& found : result.best) {
    if (std::none_of(found.script.grants.begin(), found.script.grants.end(),
                     is_crash_grant)) {
      continue;
    }
    const ReplayResult replay =
        ScheduleExplorer::replay(factory, found.script, pool_pressure_cost);
    EXPECT_TRUE(replay.verdict.checked);
    EXPECT_TRUE(replay.verdict.ok) << replay.verdict.detail;
    const auto& s = replay.final_stats;
    EXPECT_LE(s.quarantined, 1u) << "quarantine must cost at most one node";
    EXPECT_LE(s.free_nodes + s.retired_unreclaimed + s.quarantined +
                  s.in_flight,
              s.pool_size)
        << "survivor-side accounting minted a node";
    saw_expropriation = saw_expropriation || s.expropriations >= 1;
  }
  EXPECT_TRUE(saw_expropriation)
      << "no surfaced crash schedule drained the dead lease";
}

}  // namespace
}  // namespace aba::search
