// Tests for the GetSeq()/announce machinery (Figure 4, lines 28-37) —
// the bounded-tag reuse protection at the heart of both upper bounds.
//
// The paper's supporting claims:
//   Claim 2: two GetSeq() calls by the same process returning the same value
//            have at least n GetSeq() calls between them.
//   Claim 3 (operational core): while some announce entry pins (p, s), p's
//            GetSeq() does not return s (once p has re-scanned that entry).
#include <gtest/gtest.h>

#include <set>

#include "core/sequence_reservation.h"
#include "sim/sim_platform.h"
#include "sim/sim_world.h"
#include "util/packed_word.h"

namespace aba::core {
namespace {

using SimP = sim::SimPlatform;

struct Fixture {
  explicit Fixture(int n, std::uint64_t seq_domain = 0)
      : world(n),
        codec(util::TripleCodec::for_processes(n, 4)),
        board(world, n, codec,
              seq_domain == 0 ? SequenceReservation<SimP>::correct_seq_domain(n)
                              : seq_domain) {}

  std::uint64_t get_seq(int p) {
    std::uint64_t s = 0;
    world.invoke(p, [&] { s = board.get_seq(p); });
    world.run_to_completion(p);
    return s;
  }

  void announce(int q, std::uint64_t pid, std::uint64_t seq) {
    world.invoke(q, [&, q, pid, seq] {
      board.announce(q, codec.pack_announcement(pid, seq));
    });
    world.run_to_completion(q);
  }

  sim::SimWorld world;
  util::TripleCodec codec;
  SequenceReservation<SimP> board;
};

TEST(SequenceReservation, OneSharedStepPerGetSeq) {
  Fixture f(4);
  for (int i = 0; i < 10; ++i) {
    std::uint64_t s = 0;
    f.world.invoke(0, [&] { s = f.board.get_seq(0); });
    EXPECT_EQ(f.world.run_to_completion(0), 1u);
  }
}

TEST(SequenceReservation, ValuesStayInDomain) {
  Fixture f(3);
  const std::uint64_t domain = SequenceReservation<SimP>::correct_seq_domain(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_LT(f.get_seq(0), domain);
  }
}

TEST(SequenceReservation, Claim2NoReuseWithinNCalls) {
  // Claim 2: a value returned by GetSeq() is not returned again within the
  // next n calls (the usedQ window).
  for (int n : {2, 3, 5, 8}) {
    Fixture f(n);
    std::vector<std::uint64_t> history;
    for (int i = 0; i < 6 * n; ++i) history.push_back(f.get_seq(0));
    for (std::size_t i = 0; i < history.size(); ++i) {
      for (std::size_t j = i + 1; j < history.size() && j <= i + static_cast<std::size_t>(n); ++j) {
        EXPECT_NE(history[i], history[j])
            << "n=" << n << ": value reused after only " << (j - i) << " calls";
      }
    }
  }
}

TEST(SequenceReservation, PinnedValueIsNotReturnedAfterScan) {
  // Claim 3's operational core: announce (p=0, s) in some slot; after
  // process 0 has scanned the whole array (n GetSeq calls), s is never
  // returned while the announcement stays.
  const int n = 3;
  Fixture f(n);
  const std::uint64_t pinned = f.get_seq(0);
  f.announce(/*q=*/1, /*pid=*/0, pinned);
  // Let process 0 scan all n slots.
  std::vector<std::uint64_t> seen;
  for (int i = 0; i < n; ++i) seen.push_back(f.get_seq(0));
  // From now on, 0 must avoid `pinned` for as long as A[1] holds it.
  for (int i = 0; i < 8 * n; ++i) {
    EXPECT_NE(f.get_seq(0), pinned) << "iteration " << i;
  }
  // Release the pin; the value must eventually come back into rotation
  // (otherwise the domain would leak).
  f.announce(/*q=*/1, /*pid=*/0, (pinned + 1) % 8);
  bool returned = false;
  for (int i = 0; i < 8 * n && !returned; ++i) {
    returned = (f.get_seq(0) == pinned);
  }
  EXPECT_TRUE(returned) << "released value never re-entered rotation";
}

TEST(SequenceReservation, PinsByAllReadersRespected) {
  // Every reader pins a distinct value; the writer must avoid all of them.
  const int n = 4;
  Fixture f(n);
  std::set<std::uint64_t> pinned;
  std::uint64_t s = 0;
  for (int q = 1; q < n; ++q) {
    s = f.get_seq(0);
    f.announce(q, 0, s);
    pinned.insert(s);
  }
  ASSERT_EQ(pinned.size(), 3u);
  // Scan round.
  for (int i = 0; i < n; ++i) f.get_seq(0);
  for (int i = 0; i < 10 * n; ++i) {
    EXPECT_EQ(pinned.count(f.get_seq(0)), 0u);
  }
}

TEST(SequenceReservation, OtherWritersPinsDoNotBlockMe) {
  // An announcement naming pid 1 must not constrain pid 0's choices: the
  // sequence of values pid 0 draws is identical with and without it.
  const int n = 2;
  Fixture with_pin(n);
  with_pin.announce(/*q=*/1, /*pid=*/1, /*seq=*/0);
  Fixture without_pin(n);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(with_pin.get_seq(0), without_pin.get_seq(0)) << "call " << i;
  }
}

TEST(SequenceReservation, UnderProvisionedDomainIsFlagged) {
  Fixture correct(3);
  EXPECT_FALSE(correct.board.is_under_provisioned());
  Fixture broken(3, /*seq_domain=*/3);
  EXPECT_TRUE(broken.board.is_under_provisioned());
}

TEST(SequenceReservation, UnderProvisionedDomainForcesReuse) {
  // With a domain smaller than n+2, the usedQ window alone exceeds the
  // domain and the fallback must recycle pinned-aged values — the unsound
  // behaviour the lower-bound experiments rely on.
  const int n = 3;
  Fixture f(n, /*seq_domain=*/2);
  std::vector<std::uint64_t> history;
  for (int i = 0; i < 12; ++i) history.push_back(f.get_seq(0));
  bool reuse_within_n = false;
  for (std::size_t i = 0; i + 1 < history.size(); ++i) {
    for (std::size_t j = i + 1; j < std::min(history.size(), i + 1 + static_cast<std::size_t>(n)); ++j) {
      if (history[i] == history[j]) reuse_within_n = true;
    }
  }
  EXPECT_TRUE(reuse_within_n);
}

TEST(SequenceReservation, AnnouncementCodecRoundTrip) {
  Fixture f(5);
  const std::uint64_t a = f.codec.pack_announcement(3, 7);
  EXPECT_TRUE(f.codec.announcement_valid(a));
  EXPECT_EQ(f.codec.announcement_pid(a), 3u);
  EXPECT_EQ(f.codec.announcement_seq(a), 7u);
}

}  // namespace
}  // namespace aba::core
