// Tests named after the paper's numbered claims: each test realizes the
// claim's statement (or its operational core) as an executable scenario.
// Together with the linearizability suites these pin the reproduction to
// the paper's own proof structure.
#include <gtest/gtest.h>

#include "core/aba_detecting_register.h"
#include "core/aba_register_bounded.h"
#include "core/aba_register_bounded_tag_naive.h"
#include "core/aba_register_from_llsc.h"
#include "core/aba_register_unbounded_tag.h"
#include "core/llsc.h"
#include "core/llsc_register_array.h"
#include "core/llsc_single_cas.h"
#include "core/llsc_unbounded_tag.h"
#include "harness/adapters.h"
#include "harness/harness.h"
#include "native/native_platform.h"
#include "sim/sim_platform.h"
#include "spec/lin_checker.h"
#include "spec/specs.h"

namespace aba {
namespace {

using SimP = sim::SimPlatform;
using NativeP = native::NativePlatform<>;

// ------------------------------------------------------------ API concepts

static_assert(core::AbaDetectingRegister<core::AbaRegisterBounded<SimP>>);
static_assert(core::AbaDetectingRegister<core::AbaRegisterBounded<NativeP>>);
static_assert(core::AbaDetectingRegister<core::AbaRegisterUnboundedTag<SimP>>);
static_assert(
    core::AbaDetectingRegister<core::AbaRegisterBoundedTagNaive<SimP>>);
static_assert(core::AbaDetectingRegister<
              core::AbaRegisterFromLlsc<core::LlscSingleCas<SimP>>>);

static_assert(core::LlScVl<core::LlscSingleCas<SimP>>);
static_assert(core::LlScVl<core::LlscSingleCas<NativeP>>);
static_assert(core::LlScVl<core::LlscRegisterArray<SimP>>);
static_assert(core::LlScVl<core::LlscUnboundedTag<SimP>>);

static_assert(Platform<SimP>);
static_assert(Platform<NativeP>);

TEST(ApiConcepts, CompileTimeChecksHold) { SUCCEED(); }

// -------------------------------------------------- Appendix C, Claim 1
// "If b = true at rsp(dr) then some process writes to X during
//  [l(dr), rsp(dr)]; otherwise A[q] = (p,s) = (p',s') at l(dr)."
// Operational check: after a DRead whose two X-reads straddle a DWrite, the
// *next* DRead must flag; after an undisturbed DRead, a subsequent quiet
// DRead must not flag.

TEST(AppendixC_Claim1, StraddledReadPropagatesFlagThroughB) {
  sim::SimWorld world(2);
  core::AbaRegisterBounded<SimP> reg(world, 2);
  // Quiet DRead to settle state.
  world.invoke(1, [&] { reg.dread(1); });
  world.run_to_completion(1);
  // DRead with a DWrite landing between its two X reads.
  std::pair<std::uint64_t, bool> straddled;
  world.invoke(1, [&] { straddled = reg.dread(1); });
  world.step(1);  // read X
  world.step(1);  // read A[q]
  world.step(1);  // write A[q]
  world.invoke(0, [&] { reg.dwrite(0, 3); });
  world.run_to_completion(0);
  world.run_to_completion(1);  // second X read differs -> b := true
  // The write linearized after the straddled read's linearization point;
  // the NEXT read must report it even though X might compare clean.
  std::pair<std::uint64_t, bool> next;
  world.invoke(1, [&] { next = reg.dread(1); });
  world.run_to_completion(1);
  EXPECT_TRUE(straddled.second || next.second);
  EXPECT_EQ(next.first, 3u);
}

TEST(AppendixC_Claim1, QuietReadsNeverFlag) {
  sim::SimWorld world(2);
  core::AbaRegisterBounded<SimP> reg(world, 2);
  world.invoke(0, [&] { reg.dwrite(0, 9); });
  world.run_to_completion(0);
  std::pair<std::uint64_t, bool> r;
  world.invoke(1, [&] { r = reg.dread(1); });
  world.run_to_completion(1);
  EXPECT_TRUE(r.second);
  for (int i = 0; i < 10; ++i) {
    world.invoke(1, [&] { r = reg.dread(1); });
    world.run_to_completion(1);
    EXPECT_FALSE(r.second) << "quiet re-read " << i << " must not flag";
    EXPECT_EQ(r.first, 9u);
  }
}

// -------------------------------------------------- Appendix C, Claims 4/5
// Claim 4: if b=false at inv(dr2) and the announcement pair matches, no
// process wrote X between the linearization points (flag false is sound).
// Claim 5: if the announcement pair differs, some process wrote X between
// the linearization points (flag true is sound).
// Both directions are jointly captured by linearizability over adversarial
// write placements relative to a reader's 4 steps.

TEST(AppendixC_Claims4And5, WritePlacementSweepStaysLinearizable) {
  // For every position k in 0..4, run: DRead; [k steps of DRead2]; full
  // DWrite; [rest of DRead2]; DRead3 — check the whole history.
  for (int cut = 0; cut <= 4; ++cut) {
    sim::SimWorld world(2);
    spec::History history;
    using Fig4 = core::AbaRegisterBounded<SimP>;
    auto invoker = std::make_unique<harness::AbaRegInvoker<Fig4>>(
        world, history, std::make_unique<Fig4>(world, 2));
    invoker->invoke({1, spec::Method::kDRead, 0});
    world.run_to_completion(1);
    invoker->invoke({1, spec::Method::kDRead, 0});
    for (int i = 0; i < cut; ++i) world.step(1);
    invoker->invoke({0, spec::Method::kDWrite, 5});
    world.run_to_completion(0);
    world.run_to_completion(1);
    invoker->invoke({1, spec::Method::kDRead, 0});
    world.run_to_completion(1);

    const auto ops = history.ops();
    const auto result = spec::check_linearizable<spec::AbaRegisterSpec>(
        ops, spec::AbaRegisterSpec::initial(2, 0));
    EXPECT_TRUE(result.linearizable)
        << "cut=" << cut << "\n" << spec::explain(ops, result);
    // The write must be reported by read #2 or read #3.
    EXPECT_TRUE(spec::dread_flag(ops[1].ret) || spec::dread_flag(ops[3].ret))
        << "cut=" << cut;
  }
}

// -------------------------------------------------- Appendix D, Claim 6
// "If a process executes n consecutive unsuccessful CASes in LL/SC, another
//  process executed a successful CAS in line 6 of an SC meanwhile."
// Operationally: LL-only interference can never make a process's LL fail n
// times, because each interfering LL-CAS clears one bit.

TEST(AppendixD_Claim6, LlOnlyInterferenceCannotExhaustRetries) {
  const int n = 4;
  sim::SimWorld world(n);
  core::LlscSingleCas<SimP> obj(
      world, n, {.value_bits = 8, .initial_value = 0, .initially_linked = false});
  // All processes run their first LL concurrently in lock-step; nobody runs
  // an SC. Every LL must complete with b = false (a successful bit-clearing
  // CAS), i.e. in at most 3 + 2(n-1) steps, never taking the b=true exit.
  for (int p = 0; p < n; ++p) {
    world.invoke(p, [&obj, p] { obj.ll(p); });
  }
  bool progress = true;
  while (progress) {
    progress = false;
    for (int p = 0; p < n; ++p) {
      if (world.poised(p).has_value()) {
        world.step(p);
        progress = true;
      }
    }
  }
  ASSERT_TRUE(world.all_idle());
  // If some LL had taken the "n failures" exit, a subsequent VL would be
  // false despite no SC ever running — check VL is true for everyone.
  for (int p = 0; p < n; ++p) {
    bool vl = false;
    world.invoke(p, [&obj, p, &vl] { vl = obj.vl(p); });
    world.run_to_completion(p);
    EXPECT_TRUE(vl) << "p" << p
                    << ": LL must not conclude 'SC intervened' from LL-only "
                       "interference (Claim 6)";
  }
}

// -------------------------------------------------- Appendix D, Claims 7-10
// The per-claim statements are about linearization points; their observable
// content is the success/failure pattern of SC/VL relative to intervening
// successful SCs, which the LlscSpec linearizability sweeps already check.
// Here: the specific Claim 9 pattern — an SC succeeds iff no successful SC
// linearized since the same process's last LL — under a deterministic
// tournament of all 2-process orderings.

TEST(AppendixD_Claim9, ScSuccessPatternUnderOrderingTournament) {
  for (int winner : {0, 1}) {
    sim::SimWorld world(2);
    core::LlscSingleCas<SimP> obj(
        world, 2, {.value_bits = 8, .initial_value = 0, .initially_linked = false});
    // Both LL.
    for (int p : {0, 1}) {
      world.invoke(p, [&obj, p] { obj.ll(p); });
      world.run_to_completion(p);
    }
    // `winner` SCs first (solo), the other after.
    bool first_ok = false, second_ok = true;
    world.invoke(winner, [&, winner] { first_ok = obj.sc(winner, 5); });
    world.run_to_completion(winner);
    const int loser = 1 - winner;
    world.invoke(loser, [&, loser] { second_ok = obj.sc(loser, 6); });
    world.run_to_completion(loser);
    EXPECT_TRUE(first_ok) << "winner " << winner;
    EXPECT_FALSE(second_ok) << "winner " << winner;
    // Value is the winner's.
    std::uint64_t v = 0;
    world.invoke(0, [&] { v = obj.ll(0); });
    world.run_to_completion(0);
    EXPECT_EQ(v, 5u);
  }
}

// -------------------------------------------------- Theorem 4's reduction
// The LL/SC -> ABA-detecting reduction must preserve detection through BOTH
// verified LL/SC implementations under an identical adversarial schedule.

template <class Llsc>
void reduction_detects_under_schedule() {
  sim::SimWorld world(2);
  Llsc llsc(world, 2,
            {.value_bits = 8, .initial_value = 0, .initially_linked = true});
  core::AbaRegisterFromLlsc<Llsc> reg(llsc, 2, 0);
  std::pair<std::uint64_t, bool> r;
  world.invoke(1, [&] { r = reg.dread(1); });
  world.run_to_completion(1);
  EXPECT_FALSE(r.second);
  // ABA write: restore the initial value.
  world.invoke(0, [&] { reg.dwrite(0, 0); });
  world.run_to_completion(0);
  world.invoke(1, [&] { r = reg.dread(1); });
  world.run_to_completion(1);
  EXPECT_TRUE(r.second) << "the reduction must detect the same-value write";
  EXPECT_EQ(r.first, 0u);
}

TEST(Theorem4Reduction, DetectsOverFig3) {
  reduction_detects_under_schedule<core::LlscSingleCas<SimP>>();
}

TEST(Theorem4Reduction, DetectsOverRegArray) {
  reduction_detects_under_schedule<core::LlscRegisterArray<SimP>>();
}

TEST(Theorem4Reduction, DetectsOverMoir) {
  reduction_detects_under_schedule<core::LlscUnboundedTag<SimP>>();
}

// -------------------------------------------------- cross-composition
// Fig 5 over RegArray — the third full-bounded stack — exhaustively checked
// on a small scenario.

TEST(CrossComposition, Fig5OverRegArrayExhaustive) {
  using Llsc = core::LlscRegisterArray<SimP>;
  auto factory = [](sim::SimWorld& world, spec::History& history)
      -> std::unique_ptr<harness::Invoker> {
    struct Composed {
      Composed(sim::SimWorld& world)
          : llsc(world, 2,
                 Llsc::Options{.value_bits = 4,
                               .initial_value = 0,
                               .initially_linked = true}),
            reg(llsc, 2, 0) {}
      std::pair<std::uint64_t, bool> dread(int q) { return reg.dread(q); }
      void dwrite(int p, std::uint64_t x) { reg.dwrite(p, x); }
      Llsc llsc;
      core::AbaRegisterFromLlsc<Llsc> reg;
    };
    return std::make_unique<harness::AbaRegInvoker<Composed>>(
        world, history, std::make_unique<Composed>(world));
  };
  const std::vector<harness::WorkloadOp> workload = {
      {0, spec::Method::kDWrite, 1},
      {1, spec::Method::kDRead, 0},
      {1, spec::Method::kDRead, 0},
  };
  const auto result = harness::model_check(
      2, factory, workload, [](const std::vector<spec::Op>& ops) {
        return static_cast<bool>(
            spec::check_linearizable<spec::AbaRegisterSpec>(
                ops, spec::AbaRegisterSpec::initial(2, 0)));
      });
  EXPECT_FALSE(result.budget_exhausted);
  EXPECT_EQ(result.violations, 0u);
}

}  // namespace
}  // namespace aba
