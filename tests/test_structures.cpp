// Tests for the application structures: the Treiber stack with its three
// head-protection policies (raw CAS / bounded tag / LL/SC) and the Michael-
// Scott queue, all under the default immediate-reuse (tagged) reclaimer.
// The reclamation axis — hazard/epoch/leaky policies and their sweeps — is
// covered by tests/test_reclaim.cpp.
//
// The centerpiece is the deterministic ABA reproduction: one fixed schedule
// corrupts the raw-CAS stack, while the *same* schedule leaves the tagged
// and LL/SC stacks correct — the paper's motivation made into a regression
// test.
#include <gtest/gtest.h>

#include <memory>
#include <thread>

#include "core/llsc_single_cas.h"
#include "core/llsc_unbounded_tag.h"
#include "harness/adapters.h"
#include "harness/harness.h"
#include "sim/sim_platform.h"
#include "spec/lin_checker.h"
#include "spec/specs.h"
#include "structures/ms_queue.h"
#include "structures/treiber_stack.h"
#include "util/rng.h"

namespace aba::structures {
namespace {

using SimP = sim::SimPlatform;
using harness::WorkloadOp;
using spec::Method;

// ------------------------------------------------------------ fixtures

// Stack with raw CAS head.
struct RawStack {
  RawStack(sim::SimWorld& world, int n, int per_process)
      : stack(world, n, std::make_unique<RawCasHead<SimP>>(world, n),
              TreiberStack<SimP, RawCasHead<SimP>>::partition(n, per_process)) {}
  bool push(int p, std::uint64_t v) { return stack.push(p, v); }
  std::optional<std::uint64_t> pop(int p) { return stack.pop(p); }
  // Uniform container verbs (structures/concepts.h) so the wrapper feeds
  // harness::ContainerInvoker like the structures it wraps.
  bool try_push(int p, std::uint64_t v) { return stack.push(p, v); }
  std::optional<std::uint64_t> try_pop(int p) { return stack.pop(p); }
  TreiberStack<SimP, RawCasHead<SimP>> stack;
};

// Stack with (index, tag) CAS head.
struct TaggedStack {
  TaggedStack(sim::SimWorld& world, int n, int per_process, unsigned tag_bits = 16)
      : stack(world, n, std::make_unique<TaggedCasHead<SimP>>(world, n, 16, tag_bits),
              TreiberStack<SimP, TaggedCasHead<SimP>>::partition(n, per_process)) {
  }
  bool push(int p, std::uint64_t v) { return stack.push(p, v); }
  std::optional<std::uint64_t> pop(int p) { return stack.pop(p); }
  bool try_push(int p, std::uint64_t v) { return stack.push(p, v); }
  std::optional<std::uint64_t> try_pop(int p) { return stack.pop(p); }
  TreiberStack<SimP, TaggedCasHead<SimP>> stack;
};

// Stack whose head is the paper's Figure 3 LL/SC object.
struct LlscStack {
  using Llsc = core::LlscSingleCas<SimP>;
  LlscStack(sim::SimWorld& world, int n, int per_process)
      : llsc(world, n,
             Llsc::Options{.value_bits = 32,
                           .initial_value = kNullIndex,
                           .initially_linked = false}),
        stack(world, n, std::make_unique<LlscHead<Llsc>>(llsc),
              TreiberStack<SimP, LlscHead<Llsc>>::partition(n, per_process)) {}
  bool push(int p, std::uint64_t v) { return stack.push(p, v); }
  std::optional<std::uint64_t> pop(int p) { return stack.pop(p); }
  bool try_push(int p, std::uint64_t v) { return stack.push(p, v); }
  std::optional<std::uint64_t> try_pop(int p) { return stack.pop(p); }
  Llsc llsc;
  TreiberStack<SimP, LlscHead<Llsc>> stack;
};

struct SimQueue {
  SimQueue(sim::SimWorld& world, int n, int per_process, unsigned tag_bits = 16)
      : queue(world, n, per_process,
              MsQueue<SimP>::Options{.index_bits = 16, .tag_bits = tag_bits}) {}
  bool enqueue(int p, std::uint64_t v) { return queue.enqueue(p, v); }
  std::optional<std::uint64_t> dequeue(int p) { return queue.dequeue(p); }
  bool try_push(int p, std::uint64_t v) { return queue.enqueue(p, v); }
  std::optional<std::uint64_t> try_pop(int p) { return queue.dequeue(p); }
  MsQueue<SimP> queue;
};

template <class Impl, class... Args>
harness::FixtureFactory stack_factory(int n, Args... args) {
  return harness::make_factory<harness::StackInvoker, Impl>(n, args...);
}

// ------------------------------------------------------- sequential

TEST(TreiberStackSequential, PushPopLifo) {
  sim::SimWorld world(1);
  RawStack s(world, 1, 4);
  std::optional<std::uint64_t> r1, r2, r3;
  world.invoke(0, [&] {
    s.push(0, 10);
    s.push(0, 20);
    r1 = s.pop(0);
    r2 = s.pop(0);
    r3 = s.pop(0);
  });
  world.run_to_completion(0);
  EXPECT_EQ(r1, std::optional<std::uint64_t>(20));
  EXPECT_EQ(r2, std::optional<std::uint64_t>(10));
  EXPECT_EQ(r3, std::nullopt);
}

TEST(TreiberStackSequential, PoolExhaustionRefusesPush) {
  sim::SimWorld world(1);
  RawStack s(world, 1, 2);
  bool ok1 = false, ok2 = false, ok3 = true;
  world.invoke(0, [&] {
    ok1 = s.push(0, 1);
    ok2 = s.push(0, 2);
    ok3 = s.push(0, 3);
  });
  world.run_to_completion(0);
  EXPECT_TRUE(ok1);
  EXPECT_TRUE(ok2);
  EXPECT_FALSE(ok3);
}

TEST(TreiberStackSequential, NodesAreReusedAfterPop) {
  sim::SimWorld world(1);
  RawStack s(world, 1, 1);  // Single node: every push must reuse it.
  world.invoke(0, [&] {
    for (int i = 0; i < 10; ++i) {
      ABA_ASSERT(s.push(0, static_cast<std::uint64_t>(i)));
      ABA_ASSERT(s.pop(0) == std::optional<std::uint64_t>(i));
    }
  });
  world.run_to_completion(0);
}

TEST(MsQueueSequential, EnqueueDequeueFifo) {
  sim::SimWorld world(1);
  SimQueue q(world, 1, 4);
  std::optional<std::uint64_t> r1, r2, r3;
  world.invoke(0, [&] {
    q.enqueue(0, 10);
    q.enqueue(0, 20);
    r1 = q.dequeue(0);
    r2 = q.dequeue(0);
    r3 = q.dequeue(0);
  });
  world.run_to_completion(0);
  EXPECT_EQ(r1, std::optional<std::uint64_t>(10));
  EXPECT_EQ(r2, std::optional<std::uint64_t>(20));
  EXPECT_EQ(r3, std::nullopt);
}

TEST(MsQueueSequential, LongRunReusesNodes) {
  sim::SimWorld world(1);
  SimQueue q(world, 1, 3);
  world.invoke(0, [&] {
    for (std::uint64_t i = 0; i < 50; ++i) {
      ABA_ASSERT(q.enqueue(0, i));
      ABA_ASSERT(q.dequeue(0) == std::optional<std::uint64_t>(i));
    }
  });
  world.run_to_completion(0);
}

// --------------------------------------------- the deterministic ABA

// Drives the classic Treiber ABA schedule against a stack fixture and
// returns the recorded history:
//   p0: push(10) push(20);  p1 starts pop, pauses after reading head and
//   head->next;  p0: pop pop push(30) (reusing the node p1 holds);  p1
//   resumes. With a raw CAS head p1's CAS wrongly succeeds.
template <class Fixture>
std::vector<spec::Op> run_treiber_aba_schedule() {
  sim::SimWorld world(2);
  spec::History history;
  auto invoker = std::make_unique<harness::StackInvoker<Fixture>>(
      world, history, std::make_unique<Fixture>(world, 2, 2));

  auto solo = [&](const WorkloadOp& op) {
    invoker->invoke(op);
    world.run_to_completion(op.pid);
  };

  solo({0, Method::kPush, 10});  // node0
  solo({0, Method::kPush, 20});  // node1; stack: 20 -> 10.

  // p1 starts pop: execute its head-load and next-read, then pause.
  invoker->invoke({1, Method::kPop, 0});
  world.step(1);  // load head (node1).
  world.step(1);  // read node1.next (node0).

  // p0 pops both nodes and pushes 30, reusing node1 (FIFO free list:
  // after pop(20)=node1, pop(10)=node0 the free list is [node1, node0]).
  solo({0, Method::kPop, 0});   // 20.
  solo({0, Method::kPop, 0});   // 10.
  solo({0, Method::kPush, 30}); // Reuses node1: head is node1 again.

  // p1 resumes: its CAS(head: node1 -> node0) is the ABA moment.
  world.run_to_completion(1);

  // Drain: two more pops by p0 observe the aftermath.
  solo({0, Method::kPop, 0});
  solo({0, Method::kPop, 0});

  return history.ops();
}

TEST(TreiberAba, RawCasHeadIsCorrupted) {
  const auto ops = run_treiber_aba_schedule<RawStack>();
  const auto result =
      spec::check_linearizable<spec::StackSpec>(ops, spec::StackSpec::initial());
  EXPECT_FALSE(result.linearizable)
      << "the raw-CAS stack must corrupt under the ABA schedule\n"
      << spec::explain(ops, result);
}

TEST(TreiberAba, TaggedHeadSurvivesSameSchedule) {
  const auto ops = run_treiber_aba_schedule<TaggedStack>();
  const auto result =
      spec::check_linearizable<spec::StackSpec>(ops, spec::StackSpec::initial());
  EXPECT_TRUE(result.linearizable) << spec::explain(ops, result);
}

TEST(TreiberAba, LlscHeadSurvivesSameSchedule) {
  const auto ops = run_treiber_aba_schedule<LlscStack>();
  const auto result =
      spec::check_linearizable<spec::StackSpec>(ops, spec::StackSpec::initial());
  EXPECT_TRUE(result.linearizable) << spec::explain(ops, result);
}

TEST(TreiberAba, OneBitTagWrapsUnderDeepenedSchedule) {
  // A 1-bit tag survives the single ABA cycle above, but four head updates
  // (pop x3 + push, reusing the node p1 pinned) wrap the tag back to the
  // value p1 observed while leaving p1's recorded next pointer stale: the
  // CAS wrongly succeeds and the stack resurrects already-popped values.
  sim::SimWorld world(2);
  spec::History history;
  auto invoker = std::make_unique<harness::StackInvoker<TaggedStack>>(
      world, history,
      std::make_unique<TaggedStack>(world, 2, 3, /*tag_bits=*/1));

  auto solo = [&](const WorkloadOp& op) {
    invoker->invoke(op);
    world.run_to_completion(op.pid);
  };
  // p0's free list is exactly {node0, node1, node2}.
  solo({0, Method::kPush, 10});  // node0
  solo({0, Method::kPush, 20});  // node1
  solo({0, Method::kPush, 30});  // node2; stack: 30 -> 20 -> 10.

  // p1 starts pop: reads head = (node2, tag t) and node2.next = node1.
  invoker->invoke({1, Method::kPop, 0});
  world.step(1);
  world.step(1);

  // Four head updates: tag goes t+4 = t (mod 2); free list cycles to
  // [node2, node1, node0] so push(40) reuses node2 with next = null.
  solo({0, Method::kPop, 0});   // 30
  solo({0, Method::kPop, 0});   // 20
  solo({0, Method::kPop, 0});   // 10
  solo({0, Method::kPush, 40}); // node2 again; stack: just 40.

  // p1's CAS sees (node2, t) and succeeds, swinging head to freed node1.
  world.run_to_completion(1);
  solo({0, Method::kPop, 0});
  solo({0, Method::kPop, 0});

  const auto ops = history.ops();
  const auto result =
      spec::check_linearizable<spec::StackSpec>(ops, spec::StackSpec::initial());
  EXPECT_FALSE(result.linearizable)
      << "a 1-bit tag must wrap around and corrupt";

  // The same deepened schedule with 16 tag bits stays correct.
}

TEST(TreiberAba, WideTagSurvivesDeepenedSchedule) {
  sim::SimWorld world(2);
  spec::History history;
  auto invoker = std::make_unique<harness::StackInvoker<TaggedStack>>(
      world, history,
      std::make_unique<TaggedStack>(world, 2, 3, /*tag_bits=*/16));
  auto solo = [&](const WorkloadOp& op) {
    invoker->invoke(op);
    world.run_to_completion(op.pid);
  };
  solo({0, Method::kPush, 10});
  solo({0, Method::kPush, 20});
  solo({0, Method::kPush, 30});
  invoker->invoke({1, Method::kPop, 0});
  world.step(1);
  world.step(1);
  solo({0, Method::kPop, 0});
  solo({0, Method::kPop, 0});
  solo({0, Method::kPop, 0});
  solo({0, Method::kPush, 40});
  world.run_to_completion(1);
  solo({0, Method::kPop, 0});
  solo({0, Method::kPop, 0});

  const auto ops = history.ops();
  const auto result =
      spec::check_linearizable<spec::StackSpec>(ops, spec::StackSpec::initial());
  EXPECT_TRUE(result.linearizable) << spec::explain(ops, result);
}

// --------------------------------------------------- property: random

struct StackRandomCase {
  int n;
  int ops_per_process;
  std::uint64_t seed;
};

std::vector<StackRandomCase> stack_cases() {
  std::vector<StackRandomCase> cases;
  for (int n : {2, 3}) {
    for (std::uint64_t seed = 0; seed < 10; ++seed) cases.push_back({n, 6, seed});
  }
  return cases;
}

std::vector<WorkloadOp> random_stack_workload(int n, int ops, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<WorkloadOp> workload;
  for (int pid = 0; pid < n; ++pid) {
    for (int i = 0; i < ops; ++i) {
      if (rng.chance(1, 2)) {
        workload.push_back({pid, Method::kPush, rng.below(100)});
      } else {
        workload.push_back({pid, Method::kPop, 0});
      }
    }
  }
  return workload;
}

class TaggedStackRandom : public ::testing::TestWithParam<StackRandomCase> {};

TEST_P(TaggedStackRandom, Linearizable) {
  const auto param = GetParam();
  const auto ops = harness::run_random_schedule(
      param.n, stack_factory<TaggedStack>(param.n, 4),
      random_stack_workload(param.n, param.ops_per_process, param.seed),
      param.seed * 613 + 7);
  const auto result =
      spec::check_linearizable<spec::StackSpec>(ops, spec::StackSpec::initial());
  EXPECT_TRUE(result.linearizable) << spec::explain(ops, result);
}

INSTANTIATE_TEST_SUITE_P(Sweep, TaggedStackRandom,
                         ::testing::ValuesIn(stack_cases()));

class LlscStackRandom : public ::testing::TestWithParam<StackRandomCase> {};

TEST_P(LlscStackRandom, Linearizable) {
  const auto param = GetParam();
  const auto ops = harness::run_random_schedule(
      param.n, stack_factory<LlscStack>(param.n, 4),
      random_stack_workload(param.n, param.ops_per_process, param.seed),
      param.seed * 617 + 9);
  const auto result =
      spec::check_linearizable<spec::StackSpec>(ops, spec::StackSpec::initial());
  EXPECT_TRUE(result.linearizable) << spec::explain(ops, result);
}

INSTANTIATE_TEST_SUITE_P(Sweep, LlscStackRandom,
                         ::testing::ValuesIn(stack_cases()));

class MsQueueRandom : public ::testing::TestWithParam<StackRandomCase> {};

TEST_P(MsQueueRandom, Linearizable) {
  const auto param = GetParam();
  util::Xoshiro256 rng(param.seed);
  std::vector<WorkloadOp> workload;
  for (int pid = 0; pid < param.n; ++pid) {
    for (int i = 0; i < param.ops_per_process; ++i) {
      if (rng.chance(1, 2)) {
        workload.push_back({pid, Method::kEnq, rng.below(100)});
      } else {
        workload.push_back({pid, Method::kDeq, 0});
      }
    }
  }
  auto factory = [&](sim::SimWorld& world,
                     spec::History& history) -> std::unique_ptr<harness::Invoker> {
    return std::make_unique<harness::QueueInvoker<SimQueue>>(
        world, history, std::make_unique<SimQueue>(world, param.n, 6));
  };
  const auto ops =
      harness::run_random_schedule(param.n, factory, workload, param.seed * 619);
  const auto result =
      spec::check_linearizable<spec::QueueSpec>(ops, spec::QueueSpec::initial());
  EXPECT_TRUE(result.linearizable) << spec::explain(ops, result);
}

INSTANTIATE_TEST_SUITE_P(Sweep, MsQueueRandom, ::testing::ValuesIn(stack_cases()));

}  // namespace
}  // namespace aba::structures
