// Tests for the ABA-detecting register implementations:
//   - Figure 4 (n+1 bounded registers, Theorem 3),
//   - the unbounded-tag baseline,
//   - Figure 5 (from LL/SC/VL, Theorem 4), composed over both the spec-level
//     unbounded-tag LL/SC and the real Figure 3 implementation.
//
// Strategy: deterministic sequential checks, deterministic adversarial
// windows (the exact races the paper's proof reasons about), seeded-random
// linearizability property sweeps, exhaustive model checking of small
// scenarios, and step-complexity/space accounting against Theorem 3.
#include <gtest/gtest.h>

#include "test_support.h"

namespace aba::testing {
namespace {

using Fig4 = core::AbaRegisterBounded<SimP>;
using UnboundedTag = core::AbaRegisterUnboundedTag<SimP>;

// ------------------------------------------------------------- sequential

TEST(Fig4Sequential, InitialReadIsClean) {
  sim::SimWorld world(2);
  Fig4 reg(world, 2, {.value_bits = 8, .seq_domain = 0, .initial_value = 42});
  std::pair<std::uint64_t, bool> r{0, true};
  world.invoke(1, [&] { r = reg.dread(1); });
  world.run_to_completion(1);
  EXPECT_EQ(r.first, 42u);
  EXPECT_FALSE(r.second);
}

TEST(Fig4Sequential, WriteThenReadFlagsOnce) {
  sim::SimWorld world(2);
  Fig4 reg(world, 2);
  world.invoke(0, [&] { reg.dwrite(0, 7); });
  world.run_to_completion(0);
  std::pair<std::uint64_t, bool> r1, r2;
  world.invoke(1, [&] { r1 = reg.dread(1); });
  world.run_to_completion(1);
  world.invoke(1, [&] { r2 = reg.dread(1); });
  world.run_to_completion(1);
  EXPECT_EQ(r1, (std::pair<std::uint64_t, bool>{7, true}));
  EXPECT_EQ(r2, (std::pair<std::uint64_t, bool>{7, false}));
}

TEST(Fig4Sequential, AbaSameValueWriteIsDetected) {
  // The headline property: rewriting the SAME value is still detected.
  sim::SimWorld world(2);
  Fig4 reg(world, 2);
  auto solo = [&](auto fn) {
    world.invoke(0, fn);
    world.run_to_completion(0);
  };
  solo([&] { reg.dwrite(0, 5); });
  std::pair<std::uint64_t, bool> r;
  world.invoke(1, [&] { r = reg.dread(1); });
  world.run_to_completion(1);
  EXPECT_EQ(r, (std::pair<std::uint64_t, bool>{5, true}));
  solo([&] { reg.dwrite(0, 5); });  // A -> A.
  world.invoke(1, [&] { r = reg.dread(1); });
  world.run_to_completion(1);
  EXPECT_EQ(r, (std::pair<std::uint64_t, bool>{5, true})) << "ABA missed";
}

TEST(Fig4Sequential, ManyWritesCycleSequenceNumbersSafely) {
  // 100 writes with reads interleaved; seq domain is only 2n+2 = 6 values,
  // so numbers recycle heavily and every write must still be detected.
  sim::SimWorld world(2);
  Fig4 reg(world, 2);
  for (int i = 0; i < 100; ++i) {
    world.invoke(0, [&] { reg.dwrite(0, 3); });
    world.run_to_completion(0);
    std::pair<std::uint64_t, bool> r;
    world.invoke(1, [&] { r = reg.dread(1); });
    world.run_to_completion(1);
    EXPECT_TRUE(r.second) << "write " << i << " missed";
  }
}

TEST(Fig4Sequential, MultiWriterDistinctPids) {
  sim::SimWorld world(3);
  Fig4 reg(world, 3);
  for (int writer : {0, 1, 2}) {
    world.invoke(writer, [&, writer] {
      reg.dwrite(writer, static_cast<std::uint64_t>(writer + 10));
    });
    world.run_to_completion(writer);
    std::pair<std::uint64_t, bool> r;
    const int reader = (writer + 1) % 3;
    world.invoke(reader, [&, reader] { r = reg.dread(reader); });
    world.run_to_completion(reader);
    EXPECT_EQ(r.first, static_cast<std::uint64_t>(writer + 10));
    EXPECT_TRUE(r.second);
  }
}

// ------------------------------------------------------ step complexity

TEST(Fig4Steps, DWriteIsTwoSteps) {
  sim::SimWorld world(4);
  Fig4 reg(world, 4);
  for (int i = 0; i < 20; ++i) {
    world.invoke(0, [&] { reg.dwrite(0, 1); });
    EXPECT_EQ(world.run_to_completion(0), 2u);
  }
}

TEST(Fig4Steps, DReadIsFourSteps) {
  sim::SimWorld world(4);
  Fig4 reg(world, 4);
  for (int i = 0; i < 20; ++i) {
    world.invoke(1, [&] { reg.dread(1); });
    EXPECT_EQ(world.run_to_completion(1), 4u);
  }
}

TEST(Fig4Steps, StepCountIndependentOfN) {
  // Theorem 3: constant step complexity. Check the counts for several n.
  for (int n : {2, 4, 8, 16, 32}) {
    sim::SimWorld world(n);
    Fig4 reg(world, n);
    world.invoke(0, [&] { reg.dwrite(0, 1); });
    EXPECT_EQ(world.run_to_completion(0), 2u) << "n=" << n;
    world.invoke(n - 1, [&] { reg.dread(n - 1); });
    EXPECT_EQ(world.run_to_completion(n - 1), 4u) << "n=" << n;
  }
}

// ---------------------------------------------------------------- space

TEST(Fig4Space, UsesExactlyNPlusOneRegisters) {
  for (int n : {1, 2, 5, 9}) {
    sim::SimWorld world(n);
    Fig4 reg(world, n);
    EXPECT_EQ(world.num_objects(), static_cast<std::size_t>(n) + 1) << "n=" << n;
    EXPECT_EQ(reg.num_shared_registers(), n + 1);
    for (std::size_t i = 0; i < world.num_objects(); ++i) {
      const auto info = world.object_info(static_cast<sim::ObjectId>(i));
      EXPECT_EQ(info.kind, sim::ObjectKind::kRegister);
      EXPECT_TRUE(info.bound.is_bounded());
    }
  }
}

TEST(Fig4Space, RegisterWidthMatchesTheorem3) {
  // Theorem 3: (b + 2 log n + O(1))-bit registers.
  for (int n : {2, 8, 64}) {
    for (unsigned b : {1u, 8u, 16u}) {
      sim::SimWorld world(n);
      Fig4 reg(world, n, {.value_bits = b, .seq_domain = 0, .initial_value = 0});
      const unsigned log_n = util::bits_for(static_cast<std::uint64_t>(n) - 1);
      EXPECT_LE(reg.x_register_bits(), b + 2 * log_n + 3) << "n=" << n;
      EXPECT_LE(reg.announce_register_bits(), 2 * log_n + 3) << "n=" << n;
    }
  }
}

// ------------------------------------------- deterministic race windows

// A DWrite completing entirely between a DRead's two X-reads: the read must
// report flag=true immediately or set local b so the NEXT read reports it.
TEST(Fig4Races, WriteBetweenTheTwoReadsOfADRead) {
  sim::SimWorld world(2);
  spec::History history;
  auto invoker = std::make_unique<harness::AbaRegInvoker<Fig4>>(
      world, history, std::make_unique<Fig4>(world, 2));

  // Reader: first complete a clean DRead.
  invoker->invoke({1, spec::Method::kDRead, 0});
  world.run_to_completion(1);

  // Reader starts its second DRead; execute the first X-read (step 1).
  invoker->invoke({1, spec::Method::kDRead, 0});
  world.step(1);  // line 38: reads X.

  // Writer performs a full DWrite of the same (initial-equal) value.
  invoker->invoke({0, spec::Method::kDWrite, 0});
  world.run_to_completion(0);

  // Reader finishes DRead #2 and runs DRead #3.
  world.run_to_completion(1);
  invoker->invoke({1, spec::Method::kDRead, 0});
  world.run_to_completion(1);

  const auto ops = history.ops();
  ASSERT_EQ(ops.size(), 4u);
  // DRead #2 or #3 must carry the flag (the write linearized after #2's
  // linearization point, so #3 reporting it is the expected outcome).
  const bool flagged = spec::dread_flag(ops[1].ret) || spec::dread_flag(ops[3].ret);
  EXPECT_TRUE(flagged);
  // And the overall history must be linearizable.
  EXPECT_TRUE(aba_reg_check(2, 0)(ops));
}

// The write lands between the read of A[q] and the announcement write: the
// announcement then names the OLD triple, and correctness hinges on the
// second X-read differing (b gets set).
TEST(Fig4Races, WriteBetweenAnnounceReadAndAnnounceWrite) {
  sim::SimWorld world(2);
  spec::History history;
  auto invoker = std::make_unique<harness::AbaRegInvoker<Fig4>>(
      world, history, std::make_unique<Fig4>(world, 2));

  invoker->invoke({1, spec::Method::kDRead, 0});
  world.step(1);  // line 38: read X.
  world.step(1);  // line 39: read A[q].

  invoker->invoke({0, spec::Method::kDWrite, 5});
  world.run_to_completion(0);

  world.run_to_completion(1);  // lines 40-41.
  invoker->invoke({1, spec::Method::kDRead, 0});
  world.run_to_completion(1);

  const auto ops = history.ops();
  ASSERT_EQ(ops.size(), 3u);
  EXPECT_TRUE(aba_reg_check(2, 0)(ops)) << history.to_string();
  // The second DRead must observe the write's value and flag.
  EXPECT_EQ(spec::dread_value(ops[2].ret), 5u);
  EXPECT_TRUE(spec::dread_flag(ops[2].ret));
}

// Writer stalls poised-to-write while reads complete around it.
TEST(Fig4Races, StalledWriterEventuallyFlags) {
  sim::SimWorld world(2);
  spec::History history;
  auto invoker = std::make_unique<harness::AbaRegInvoker<Fig4>>(
      world, history, std::make_unique<Fig4>(world, 2));

  invoker->invoke({0, spec::Method::kDWrite, 9});
  world.step(0);  // GetSeq's announce read; writer now poised at X.Write.

  invoker->invoke({1, spec::Method::kDRead, 0});
  world.run_to_completion(1);  // Clean read (write not yet applied).

  world.run_to_completion(0);  // The write lands.

  invoker->invoke({1, spec::Method::kDRead, 0});
  world.run_to_completion(1);

  const auto ops = history.ops();
  ASSERT_EQ(ops.size(), 3u);
  EXPECT_TRUE(aba_reg_check(2, 0)(ops)) << history.to_string();
  EXPECT_EQ(spec::dread_value(ops[2].ret), 9u);
  EXPECT_TRUE(spec::dread_flag(ops[2].ret));
}

// --------------------------------------------------- property: random

struct AbaRandomCase {
  int n;
  int ops_per_process;
  std::uint64_t seed;
};

class Fig4RandomLinearizable : public ::testing::TestWithParam<AbaRandomCase> {};

TEST_P(Fig4RandomLinearizable, HistoryIsLinearizable) {
  const auto param = GetParam();
  const auto workload =
      random_aba_workload(param.n, param.ops_per_process, 4, param.seed);
  const auto ops = harness::run_random_schedule(
      param.n, aba_reg_factory<Fig4>(param.n, {.value_bits = 4}), workload,
      param.seed * 7919 + 1);
  const auto result = spec::check_linearizable<spec::AbaRegisterSpec>(
      ops, spec::AbaRegisterSpec::initial(param.n, 0));
  EXPECT_TRUE(result.linearizable) << spec::explain(ops, result);
}

std::vector<AbaRandomCase> aba_random_cases() {
  std::vector<AbaRandomCase> cases;
  for (int n : {2, 3, 4}) {
    for (std::uint64_t seed = 0; seed < 12; ++seed) {
      cases.push_back({n, 5, seed});
    }
  }
  for (std::uint64_t seed = 100; seed < 106; ++seed) {
    cases.push_back({5, 4, seed});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, Fig4RandomLinearizable,
                         ::testing::ValuesIn(aba_random_cases()));

class UnboundedTagRandomLinearizable
    : public ::testing::TestWithParam<AbaRandomCase> {};

TEST_P(UnboundedTagRandomLinearizable, HistoryIsLinearizable) {
  const auto param = GetParam();
  const auto workload =
      random_aba_workload(param.n, param.ops_per_process, 4, param.seed);
  const auto ops = harness::run_random_schedule(
      param.n, aba_reg_factory<UnboundedTag>(param.n, {.value_bits = 4}),
      workload, param.seed * 104729 + 3);
  const auto result = spec::check_linearizable<spec::AbaRegisterSpec>(
      ops, spec::AbaRegisterSpec::initial(param.n, 0));
  EXPECT_TRUE(result.linearizable) << spec::explain(ops, result);
}

INSTANTIATE_TEST_SUITE_P(Sweep, UnboundedTagRandomLinearizable,
                         ::testing::ValuesIn(aba_random_cases()));

// Figure 5 over the unbounded-tag LL/SC (spec-like substrate).
class Fig5OverMoirRandomLinearizable
    : public ::testing::TestWithParam<AbaRandomCase> {};

TEST_P(Fig5OverMoirRandomLinearizable, HistoryIsLinearizable) {
  const auto param = GetParam();
  const auto workload =
      random_aba_workload(param.n, param.ops_per_process, 4, param.seed);
  const auto ops = harness::run_random_schedule(
      param.n, fig5_factory<core::LlscUnboundedTag<SimP>>(param.n, 0), workload,
      param.seed * 31337 + 5);
  const auto result = spec::check_linearizable<spec::AbaRegisterSpec>(
      ops, spec::AbaRegisterSpec::initial(param.n, 0));
  EXPECT_TRUE(result.linearizable) << spec::explain(ops, result);
}

INSTANTIATE_TEST_SUITE_P(Sweep, Fig5OverMoirRandomLinearizable,
                         ::testing::ValuesIn(aba_random_cases()));

// Figure 5 composed over the real Figure 3 implementation: the full
// bounded-object stack (Corollary 1's reduction made executable).
class Fig5OverFig3RandomLinearizable
    : public ::testing::TestWithParam<AbaRandomCase> {};

TEST_P(Fig5OverFig3RandomLinearizable, HistoryIsLinearizable) {
  const auto param = GetParam();
  const auto workload =
      random_aba_workload(param.n, param.ops_per_process, 4, param.seed);
  const auto ops = harness::run_random_schedule(
      param.n, fig5_factory<core::LlscSingleCas<SimP>>(param.n, 0), workload,
      param.seed * 27644437 + 11);
  const auto result = spec::check_linearizable<spec::AbaRegisterSpec>(
      ops, spec::AbaRegisterSpec::initial(param.n, 0));
  EXPECT_TRUE(result.linearizable) << spec::explain(ops, result);
}

INSTANTIATE_TEST_SUITE_P(Sweep, Fig5OverFig3RandomLinearizable,
                         ::testing::ValuesIn(aba_random_cases()));

// ------------------------------------------------- exhaustive (small)

TEST(Fig4Exhaustive, OneWriterOneReaderTwoOpsEach) {
  const std::vector<harness::WorkloadOp> workload = {
      {0, spec::Method::kDWrite, 1},
      {0, spec::Method::kDWrite, 1},  // Same value: ABA shape.
      {1, spec::Method::kDRead, 0},
      {1, spec::Method::kDRead, 0},
  };
  const auto result =
      harness::model_check(2, aba_reg_factory<Fig4>(2), workload,
                           aba_reg_check(2, 0));
  EXPECT_FALSE(result.budget_exhausted);
  EXPECT_GT(result.executions, 100u);
  EXPECT_EQ(result.violations, 0u)
      << spec::explain(result.first_violation, {});
}

TEST(Fig4Exhaustive, TwoReadersOneWriter) {
  const std::vector<harness::WorkloadOp> workload = {
      {0, spec::Method::kDWrite, 2},
      {1, spec::Method::kDRead, 0},
      {2, spec::Method::kDRead, 0},
      {2, spec::Method::kDRead, 0},
  };
  const auto result = harness::model_check(3, aba_reg_factory<Fig4>(3), workload,
                                           aba_reg_check(3, 0));
  EXPECT_FALSE(result.budget_exhausted);
  EXPECT_EQ(result.violations, 0u);
}

TEST(Fig5Exhaustive, OverFig3SmallScenario) {
  const std::vector<harness::WorkloadOp> workload = {
      {0, spec::Method::kDWrite, 1},
      {1, spec::Method::kDRead, 0},
      {1, spec::Method::kDRead, 0},
  };
  const auto result = harness::model_check(
      2, fig5_factory<core::LlscSingleCas<SimP>>(2, 0), workload,
      aba_reg_check(2, 0));
  EXPECT_FALSE(result.budget_exhausted);
  EXPECT_EQ(result.violations, 0u);
}

// ------------------------------------------------ under-provisioned seq

// With a deliberately shrunk sequence domain the reuse protection breaks;
// the adversarial schedule below makes Figure 4 miss a write. This is the
// flip side of Theorem 3's bound: the 2n+2 domain is not an accident.
TEST(Fig4UnderProvisioned, TruncatedSeqDomainCanMissWrites) {
  sim::SimWorld world(2);
  spec::History history;
  // seq_domain = 2 instead of 2n+2 = 6.
  auto invoker = std::make_unique<harness::AbaRegInvoker<Fig4>>(
      world, history,
      std::make_unique<Fig4>(world, 2,
                             Fig4::Options{.value_bits = 4,
                                           .seq_domain = 2,
                                           .initial_value = 0}));

  bool missed = false;
  // Reader q stalls between its two X reads while the writer cycles the tiny
  // sequence space back to the announced pair; the flag is then wrongly
  // computed from a stale announcement in a later read.
  for (int attempt = 0; attempt < 8 && !missed; ++attempt) {
    invoker->invoke({1, spec::Method::kDRead, 0});
    world.run_to_completion(1);
    // Writer cycles: with domain 2 the (pid, seq) pairs repeat every 2
    // writes.
    for (int w = 0; w < 2; ++w) {
      invoker->invoke({0, spec::Method::kDWrite, 0});
      world.run_to_completion(0);
    }
    invoker->invoke({1, spec::Method::kDRead, 0});
    world.run_to_completion(1);
    const auto ops = history.ops();
    const auto& last = ops.back();
    if (!spec::dread_flag(last.ret)) missed = true;
  }
  EXPECT_TRUE(missed)
      << "expected the truncated sequence domain to miss a write";
}


// --------------------------------------------- property: round-robin

// A second scheduler family: round-robin with quantum q. Quantum 1 maximizes
// interleaving; large quanta approximate solo execution. All implementations
// must stay linearizable across the sweep.
class AbaRoundRobin
    : public ::testing::TestWithParam<std::tuple<int, int, std::uint64_t>> {};

TEST_P(AbaRoundRobin, HistoryIsLinearizable) {
  const auto [n, quantum, seed] = GetParam();
  const auto workload = random_aba_workload(n, 5, 4, seed);
  for (int impl = 0; impl < 3; ++impl) {
    harness::FixtureFactory factory;
    if (impl == 0) {
      factory = aba_reg_factory<Fig4>(n, {.value_bits = 4});
    } else if (impl == 1) {
      factory = aba_reg_factory<UnboundedTag>(n, {.value_bits = 4});
    } else {
      factory = fig5_factory<core::LlscSingleCas<SimP>>(n, 0);
    }
    const auto ops = harness::run_round_robin(n, factory, workload, quantum);
    const auto result = spec::check_linearizable<spec::AbaRegisterSpec>(
        ops, spec::AbaRegisterSpec::initial(n, 0));
    EXPECT_TRUE(result.linearizable)
        << "impl=" << impl << " quantum=" << quantum << "\n"
        << spec::explain(ops, result);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AbaRoundRobin,
    ::testing::Combine(::testing::Values(2, 3, 4),
                       ::testing::Values(1, 2, 3, 7),
                       ::testing::Values(11ull, 22ull, 33ull)));

}  // namespace
}  // namespace aba::testing

