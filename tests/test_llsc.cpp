// Tests for the LL/SC/VL implementations:
//   - Figure 3 (single bounded CAS, O(n) steps, Theorem 2),
//   - LlscRegisterArray (1 CAS + n registers, O(1) steps, the
//     Anderson-Moir/Jayanti-Petrovic point on the tradeoff),
//   - the unbounded-tag baseline (Moir).
#include <gtest/gtest.h>

#include "test_support.h"

namespace aba::testing {
namespace {

using Fig3 = core::LlscSingleCas<SimP>;
using RegArray = core::LlscRegisterArray<SimP>;
using Moir = core::LlscUnboundedTag<SimP>;

template <class Impl>
class LlscTypedTest : public ::testing::Test {};

using LlscImpls = ::testing::Types<Fig3, RegArray, Moir>;
TYPED_TEST_SUITE(LlscTypedTest, LlscImpls);

// ------------------------------------------------------------- sequential
// Typed over all three implementations: the sequential contract is shared.

TYPED_TEST(LlscTypedTest, LlReturnsInitialValue) {
  sim::SimWorld world(2);
  TypeParam obj(world, 2, {.value_bits = 8, .initial_value = 77});
  std::uint64_t v = 0;
  world.invoke(0, [&] { v = obj.ll(0); });
  world.run_to_completion(0);
  EXPECT_EQ(v, 77u);
}

TYPED_TEST(LlscTypedTest, LlScVlRoundTrip) {
  sim::SimWorld world(2);
  TypeParam obj(world, 2, {.value_bits = 8, .initial_value = 0});
  bool sc_ok = false, vl_after = true;
  std::uint64_t seen = 0;
  world.invoke(0, [&] {
    obj.ll(0);
    sc_ok = obj.sc(0, 42);
  });
  world.run_to_completion(0);
  world.invoke(1, [&] {
    seen = obj.ll(1);
    vl_after = obj.vl(1);
  });
  world.run_to_completion(1);
  EXPECT_TRUE(sc_ok);
  EXPECT_EQ(seen, 42u);
  EXPECT_TRUE(vl_after);
}

TYPED_TEST(LlscTypedTest, ScFailsAfterInterveningSc) {
  sim::SimWorld world(2);
  TypeParam obj(world, 2, {.value_bits = 8, .initial_value = 0});
  bool ok0 = true, ok1 = false;
  world.invoke(0, [&] { obj.ll(0); });
  world.run_to_completion(0);
  world.invoke(1, [&] {
    obj.ll(1);
    ok1 = obj.sc(1, 5);
  });
  world.run_to_completion(1);
  world.invoke(0, [&] { ok0 = obj.sc(0, 9); });
  world.run_to_completion(0);
  EXPECT_TRUE(ok1);
  EXPECT_FALSE(ok0) << "SC must fail after an intervening successful SC";
  EXPECT_EQ(world.object_value(0) != 0 || true, true);  // Value stays 5.
  std::uint64_t v = 0;
  world.invoke(0, [&] { v = obj.ll(0); });
  world.run_to_completion(0);
  EXPECT_EQ(v, 5u);
}

TYPED_TEST(LlscTypedTest, VlFalseAfterInterveningSc) {
  sim::SimWorld world(2);
  TypeParam obj(world, 2, {.value_bits = 8, .initial_value = 0});
  world.invoke(0, [&] { obj.ll(0); });
  world.run_to_completion(0);
  world.invoke(1, [&] {
    obj.ll(1);
    obj.sc(1, 5);
  });
  world.run_to_completion(1);
  bool vl = true;
  world.invoke(0, [&] { vl = obj.vl(0); });
  world.run_to_completion(0);
  EXPECT_FALSE(vl);
}

TYPED_TEST(LlscTypedTest, InitiallyUnlinkedScAndVlFail) {
  sim::SimWorld world(2);
  TypeParam obj(world, 2,
                {.value_bits = 8, .initial_value = 3, .initially_linked = false});
  bool sc_ok = true, vl_ok = true;
  world.invoke(0, [&] { sc_ok = obj.sc(0, 9); });
  world.run_to_completion(0);
  world.invoke(1, [&] { vl_ok = obj.vl(1); });
  world.run_to_completion(1);
  EXPECT_FALSE(sc_ok);
  EXPECT_FALSE(vl_ok);
  std::uint64_t v = 0;
  world.invoke(0, [&] { v = obj.ll(0); });
  world.run_to_completion(0);
  EXPECT_EQ(v, 3u) << "failed SC must not clobber the value";
}

TYPED_TEST(LlscTypedTest, InitiallyLinkedVlTrueScSucceeds) {
  // The paper's Figure 5 w.l.o.g. convention.
  sim::SimWorld world(2);
  TypeParam obj(world, 2,
                {.value_bits = 8, .initial_value = 3, .initially_linked = true});
  bool vl_ok = false;
  world.invoke(1, [&] { vl_ok = obj.vl(1); });
  world.run_to_completion(1);
  EXPECT_TRUE(vl_ok);
  bool sc_ok = false;
  world.invoke(0, [&] { sc_ok = obj.sc(0, 9); });
  world.run_to_completion(0);
  EXPECT_TRUE(sc_ok);
  world.invoke(1, [&] { vl_ok = obj.vl(1); });
  world.run_to_completion(1);
  EXPECT_FALSE(vl_ok) << "successful SC must break all initial links";
}

TYPED_TEST(LlscTypedTest, SecondScWithoutNewLlFails) {
  sim::SimWorld world(2);
  TypeParam obj(world, 2, {.value_bits = 8, .initial_value = 0});
  bool ok1 = false, ok2 = true;
  world.invoke(0, [&] {
    obj.ll(0);
    ok1 = obj.sc(0, 1);
    ok2 = obj.sc(0, 2);
  });
  world.run_to_completion(0);
  EXPECT_TRUE(ok1);
  EXPECT_FALSE(ok2) << "an SC consumes the link";
}

// --------------------------------------------------------- Fig 3 specifics

TEST(Fig3Steps, SoloOperationsAreCheap) {
  sim::SimWorld world(4);
  Fig3 obj(world, 4, {.initially_linked = false});
  // First LL: bit set initially (unlinked), so it runs the CAS loop once:
  // 1 read + 1 read + 1 CAS = 3 steps.
  world.invoke(0, [&] { obj.ll(0); });
  EXPECT_EQ(world.run_to_completion(0), 3u);
  // Linked now; SC solo: 1 read + 1 CAS.
  world.invoke(0, [&] { obj.sc(0, 1); });
  EXPECT_EQ(world.run_to_completion(0), 2u);
  // VL: always exactly 1 step.
  world.invoke(0, [&] { obj.vl(0); });
  EXPECT_EQ(world.run_to_completion(0), 1u);
}

TEST(Fig3Steps, WorstCaseBoundsHold) {
  for (int n : {2, 4, 8}) {
    sim::SimWorld world(n);
    Fig3 obj(world, n);
    EXPECT_EQ(obj.worst_case_ll_steps(), 1 + 2 * n);
    EXPECT_EQ(obj.worst_case_sc_steps(), 2 * n);
    EXPECT_EQ(obj.num_shared_objects(), 1);
    EXPECT_EQ(world.num_objects(), 1u);
    EXPECT_EQ(world.object_info(0).kind, sim::ObjectKind::kCas);
    EXPECT_TRUE(world.object_info(0).bound.is_bounded());
  }
}

static int obj_worst_ll(int n) { return 1 + 2 * n; }

// Claim 6 scenario: p0's LL keeps failing its CAS because other processes'
// LLs clear their own bits in between; after at most n failures p0 concludes
// an SC must have intervened — here we check the bound is never exceeded
// and the LL still linearizes correctly under heavy interference.
TEST(Fig3Races, LlCasInterferenceStaysWithinBound) {
  const int n = 4;
  sim::SimWorld world(n);
  spec::History history;
  auto invoker = std::make_unique<harness::LlscInvoker<Fig3>>(
      world, history,
      std::make_unique<Fig3>(world, n,
                             Fig3::Options{.value_bits = 8,
                                           .initial_value = 0,
                                           .initially_linked = false}));

  // All processes start LLs (all bits set initially -> all take the CAS
  // path). Interleave their read/CAS pairs adversarially: each CAS succeeds
  // for one process and fails the in-flight attempts of the rest.
  for (int p = 0; p < n; ++p) invoker->invoke({p, spec::Method::kLL, 0});
  // Round-robin single steps until all LLs complete.
  bool progress = true;
  int guard = 0;
  while (progress && guard++ < 1000) {
    progress = false;
    for (int p = 0; p < n; ++p) {
      if (world.poised(p).has_value()) {
        world.step(p);
        progress = true;
      }
    }
  }
  ASSERT_TRUE(world.all_idle());
  for (int p = 0; p < n; ++p) {
    EXPECT_LE(world.steps_in_method(p),
              static_cast<std::uint64_t>(obj_worst_ll(n)))
        << "p" << p;
  }
  EXPECT_TRUE(llsc_check(n, 0, false)(history.ops())) << history.to_string();
}

// An SC that fails n CASes must return false (and that is linearizable
// because some other SC succeeded meanwhile).
TEST(Fig3Races, ScExhaustingRetriesFailsLegally) {
  const int n = 2;
  sim::SimWorld world(n);
  spec::History history;
  auto invoker = std::make_unique<harness::LlscInvoker<Fig3>>(
      world, history,
      std::make_unique<Fig3>(world, n,
                             Fig3::Options{.value_bits = 8,
                                           .initial_value = 0,
                                           .initially_linked = true}));

  // p0 and p1 both SC from their initial links; interleave so p1 wins.
  invoker->invoke({0, spec::Method::kSC, 7});
  world.step(0);  // p0 reads X.
  invoker->invoke({1, spec::Method::kSC, 9});
  world.step(1);  // p1 reads X.
  world.step(1);  // p1 CAS succeeds.
  world.run_to_completion(1);
  world.run_to_completion(0);  // p0's CAS fails; p0 re-reads, sees its bit.

  const auto ops = history.ops();
  ASSERT_EQ(ops.size(), 2u);
  EXPECT_EQ(ops[0].ret, 0u);  // p0 failed.
  EXPECT_EQ(ops[1].ret, 1u);  // p1 succeeded.
  EXPECT_TRUE(llsc_check(n, 0, true)(ops)) << history.to_string();
}

// --------------------------------------------------- RegArray specifics

TEST(RegArraySteps, ConstantTimeOperations) {
  for (int n : {2, 8, 32}) {
    sim::SimWorld world(n);
    RegArray obj(world, n);
    world.invoke(0, [&] { obj.ll(0); });
    EXPECT_EQ(world.run_to_completion(0), 3u) << "n=" << n;
    world.invoke(0, [&] { obj.sc(0, 1); });
    EXPECT_EQ(world.run_to_completion(0), 2u) << "n=" << n;
    world.invoke(1, [&] { obj.ll(1); });
    world.run_to_completion(1);
    world.invoke(1, [&] { obj.vl(1); });
    EXPECT_EQ(world.run_to_completion(1), 1u) << "n=" << n;
  }
}

TEST(RegArraySpace, OneCasPlusNRegisters) {
  for (int n : {2, 5, 16}) {
    sim::SimWorld world(n);
    RegArray obj(world, n);
    EXPECT_EQ(world.num_objects(), static_cast<std::size_t>(n) + 1);
    int cas_count = 0, reg_count = 0;
    for (std::size_t i = 0; i < world.num_objects(); ++i) {
      const auto info = world.object_info(static_cast<sim::ObjectId>(i));
      EXPECT_TRUE(info.bound.is_bounded());
      if (info.kind == sim::ObjectKind::kCas) ++cas_count;
      if (info.kind == sim::ObjectKind::kRegister) ++reg_count;
    }
    EXPECT_EQ(cas_count, 1);
    EXPECT_EQ(reg_count, n);
  }
}

// The protection race: p0 links, a successful SC lands between p0's two LL
// reads, and p0's subsequent SC must fail even though the (pid, seq) pair
// could look plausible.
TEST(RegArrayRaces, ScBetweenLlReadsBreaksLink) {
  const int n = 2;
  sim::SimWorld world(n);
  spec::History history;
  auto invoker = std::make_unique<harness::LlscInvoker<RegArray>>(
      world, history,
      std::make_unique<RegArray>(world, n,
                                 RegArray::Options{.value_bits = 8,
                                                   .initial_value = 0,
                                                   .initially_linked = true}));

  invoker->invoke({0, spec::Method::kLL, 0});
  world.step(0);  // p0's first X read.
  invoker->invoke({1, spec::Method::kSC, 5});
  world.run_to_completion(1);  // p1's SC (from initial link) succeeds.
  world.run_to_completion(0);  // p0 finishes LL: reads differ -> b set.
  invoker->invoke({0, spec::Method::kSC, 9});
  world.run_to_completion(0);

  const auto ops = history.ops();
  ASSERT_EQ(ops.size(), 3u);
  EXPECT_EQ(ops[1].ret, 1u);
  EXPECT_EQ(ops[2].ret, 0u) << "p0's SC must fail: an SC intervened";
  EXPECT_TRUE(llsc_check(n, 0, true)(ops)) << history.to_string();
}

// --------------------------------------------------- property: random

struct LlscRandomCase {
  int n;
  int ops_per_process;
  std::uint64_t seed;
  bool initially_linked;
};

class LlscRandom
    : public ::testing::TestWithParam<std::tuple<int, LlscRandomCase>> {};

std::vector<LlscRandomCase> llsc_random_cases() {
  std::vector<LlscRandomCase> cases;
  for (int n : {2, 3, 4}) {
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
      cases.push_back({n, 5, seed, (seed % 2) == 0});
    }
  }
  for (std::uint64_t seed = 50; seed < 54; ++seed) {
    cases.push_back({5, 4, seed, true});
  }
  return cases;
}

TEST_P(LlscRandom, HistoryIsLinearizable) {
  const auto [impl_kind, param] = GetParam();
  const auto workload =
      random_llsc_workload(param.n, param.ops_per_process, 4, param.seed);

  harness::FixtureFactory factory;
  if (impl_kind == 0) {
    factory = llsc_factory<Fig3>(
        param.n, {.value_bits = 4, .initial_value = 0,
                  .initially_linked = param.initially_linked});
  } else if (impl_kind == 1) {
    factory = llsc_factory<RegArray>(
        param.n, {.value_bits = 4, .initial_value = 0,
                  .initially_linked = param.initially_linked});
  } else {
    factory = llsc_factory<Moir>(
        param.n, {.value_bits = 4, .initial_value = 0,
                  .initially_linked = param.initially_linked});
  }

  const auto ops = harness::run_random_schedule(param.n, factory, workload,
                                                param.seed * 7907 + impl_kind);
  const auto result = spec::check_linearizable<spec::LlscSpec>(
      ops, spec::LlscSpec::initial(param.n, 0, param.initially_linked));
  EXPECT_TRUE(result.linearizable) << spec::explain(ops, result);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LlscRandom,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::ValuesIn(llsc_random_cases())));

// ------------------------------------------------- exhaustive (small)

TEST(Fig3Exhaustive, TwoProcessLlScRace) {
  const std::vector<harness::WorkloadOp> workload = {
      {0, spec::Method::kLL, 0},
      {0, spec::Method::kSC, 1},
      {1, spec::Method::kLL, 0},
      {1, spec::Method::kSC, 2},
  };
  const auto result = harness::model_check(
      2, llsc_factory<Fig3>(2, {.value_bits = 4}), workload,
      llsc_check(2, 0, true));
  EXPECT_FALSE(result.budget_exhausted);
  EXPECT_EQ(result.violations, 0u)
      << spec::explain(result.first_violation, {});
}

TEST(RegArrayExhaustive, TwoProcessLlScVlRace) {
  const std::vector<harness::WorkloadOp> workload = {
      {0, spec::Method::kLL, 0},
      {0, spec::Method::kSC, 1},
      {1, spec::Method::kLL, 0},
      {1, spec::Method::kSC, 2},
      {1, spec::Method::kVL, 0},
  };
  const auto result = harness::model_check(
      2, llsc_factory<RegArray>(2, {.value_bits = 4}), workload,
      llsc_check(2, 0, true));
  EXPECT_FALSE(result.budget_exhausted);
  EXPECT_EQ(result.violations, 0u)
      << spec::explain(result.first_violation, {});
}


// --------------------------------------------- property: round-robin

class LlscRoundRobin
    : public ::testing::TestWithParam<std::tuple<int, int, std::uint64_t>> {};

TEST_P(LlscRoundRobin, HistoryIsLinearizable) {
  const auto [n, quantum, seed] = GetParam();
  const auto workload = random_llsc_workload(n, 5, 4, seed);
  const std::vector<harness::FixtureFactory> factories = {
      llsc_factory<Fig3>(n, {.value_bits = 4}),
      llsc_factory<RegArray>(n, {.value_bits = 4}),
      llsc_factory<Moir>(n, {.value_bits = 4}),
  };
  for (std::size_t impl = 0; impl < factories.size(); ++impl) {
    const auto ops =
        harness::run_round_robin(n, factories[impl], workload, quantum);
    const auto result = spec::check_linearizable<spec::LlscSpec>(
        ops, spec::LlscSpec::initial(n, 0, true));
    EXPECT_TRUE(result.linearizable)
        << "impl=" << impl << " quantum=" << quantum << "\n"
        << spec::explain(ops, result);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LlscRoundRobin,
    ::testing::Combine(::testing::Values(2, 3, 4),
                       ::testing::Values(1, 2, 3, 7),
                       ::testing::Values(5ull, 6ull, 7ull)));

}  // namespace
}  // namespace aba::testing

