// Tests for the lower-bound engines: Lemma 1's covering adversary and the
// Lemma 2-3 tradeoff auditor, exercised against correct, under-provisioned,
// and unbounded implementations.
#include <gtest/gtest.h>

#include "core/aba_register_bounded.h"
#include "core/aba_register_bounded_tag_naive.h"
#include "core/aba_register_from_llsc.h"
#include "core/aba_register_unbounded_tag.h"
#include "core/llsc_single_cas.h"
#include "core/llsc_unbounded_tag.h"
#include "lowerbound/covering_adversary.h"
#include "lowerbound/tradeoff_auditor.h"
#include "lowerbound/weak_aba.h"
#include "sim/sim_platform.h"

namespace aba::lowerbound {
namespace {

using SimP = sim::SimPlatform;
using Fig4 = core::AbaRegisterBounded<SimP>;
using NaiveTag = core::AbaRegisterBoundedTagNaive<SimP>;
using UnboundedTag = core::AbaRegisterUnboundedTag<SimP>;

// WeakAba factory for Figure 5 over Figure 3 (the all-bounded CAS-based
// stack used by the tradeoff audits).
WeakAbaFactory fig5_over_fig3_factory(int n) {
  return [n](sim::SimWorld& world) -> std::unique_ptr<WeakAbaInstance> {
    struct Composed {
      Composed(sim::SimWorld& world, int n)
          : llsc(world, n,
                 core::LlscSingleCas<SimP>::Options{.value_bits = 4,
                                                    .initial_value = 0,
                                                    .initially_linked = true}),
            reg(llsc, n, 0) {}
      std::pair<std::uint64_t, bool> dread(int q) { return reg.dread(q); }
      void dwrite(int p, std::uint64_t x) { reg.dwrite(p, x); }
      core::LlscSingleCas<SimP> llsc;
      core::AbaRegisterFromLlsc<core::LlscSingleCas<SimP>> reg;
    };
    return std::make_unique<WeakAbaAdapter<Composed>>(
        world, std::make_unique<Composed>(world, n), n);
  };
}

WeakAbaFactory fig5_over_moir_factory(int n) {
  return [n](sim::SimWorld& world) -> std::unique_ptr<WeakAbaInstance> {
    struct Composed {
      Composed(sim::SimWorld& world, int n)
          : llsc(world, n,
                 core::LlscUnboundedTag<SimP>::Options{.value_bits = 4,
                                                       .initial_value = 0,
                                                       .initially_linked = true}),
            reg(llsc, n, 0) {}
      std::pair<std::uint64_t, bool> dread(int q) { return reg.dread(q); }
      void dwrite(int p, std::uint64_t x) { reg.dwrite(p, x); }
      core::LlscUnboundedTag<SimP> llsc;
      core::AbaRegisterFromLlsc<core::LlscUnboundedTag<SimP>> reg;
    };
    return std::make_unique<WeakAbaAdapter<Composed>>(
        world, std::make_unique<Composed>(world, n), n);
  };
}

// ----------------------------------------------------- covering adversary

TEST(CoveringAdversary, BreaksNaiveBoundedTagRegister) {
  // m = 1 bounded register with 4 tags: far below m >= n-1 for n = 3.
  const int n = 3;
  CoveringAdversary adversary(
      n, make_weak_aba_factory<NaiveTag>(
             n, {.value_bits = 4, .tag_bits = 2, .initial_value = 0}));
  const auto report = adversary.run(n - 1);
  EXPECT_TRUE(report.violation_found) << "the naive tag register must break";
  EXPECT_FALSE(report.cover_reached);
  // The contradiction: the p-dirty configuration's read misses the writes.
  EXPECT_FALSE(report.dirty_flag);
  EXPECT_FALSE(report.clean_flag);
  EXPECT_FALSE(report.violation_detail.empty());
}

TEST(CoveringAdversary, BreaksNaiveTagEvenWithWideTags) {
  // More tags only delays the pigeonhole; 5 bits = 32 configurations.
  const int n = 2;
  CoveringAdversary adversary(
      n, make_weak_aba_factory<NaiveTag>(
             n, {.value_bits = 1, .tag_bits = 5, .initial_value = 0}),
      CoveringAdversary::Options{.max_iterations_per_level = 256,
                                 .max_replays = 100000,
                                 .verbose_log = false});
  const auto report = adversary.run(1);
  EXPECT_TRUE(report.violation_found);
  // The chain must have run past the tag period before the repeat.
  EXPECT_GE(report.chain_iterations, 32u);
}

TEST(CoveringAdversary, Fig4ReachesFullCover) {
  for (int n : {2, 3, 4, 6}) {
    CoveringAdversary adversary(
        n, make_weak_aba_factory<Fig4>(n, {.value_bits = 1}));
    const auto report = adversary.run(n - 1);
    EXPECT_TRUE(report.cover_reached) << "n=" << n;
    EXPECT_FALSE(report.violation_found) << "n=" << n;
    EXPECT_EQ(report.max_cover, n - 1) << "n=" << n;
  }
}

TEST(CoveringAdversary, Fig4CoverUsesAnnounceRegisters) {
  // The n-1 covered registers are exactly the readers' announce entries —
  // the structural reason Figure 4 needs its announce array.
  const int n = 4;
  CoveringAdversary adversary(n,
                              make_weak_aba_factory<Fig4>(n, {.value_bits = 1}));
  const auto report = adversary.run(n - 1);
  ASSERT_TRUE(report.cover_reached);
  bool mentions_announce = false;
  for (const auto& line : report.log) {
    if (line.find("A#") != std::string::npos) mentions_announce = true;
  }
  EXPECT_TRUE(mentions_announce);
}

TEST(CoveringAdversary, UnboundedTagExhaustsBudgetWithoutRepeat) {
  // With unbounded registers, reg(D_i) never repeats: the adversary must
  // report budget exhaustion, not a violation — the paper's separation
  // between bounded and unbounded base objects.
  const int n = 2;
  CoveringAdversary adversary(
      n, make_weak_aba_factory<UnboundedTag>(n, {.value_bits = 1}),
      CoveringAdversary::Options{.max_iterations_per_level = 64,
                                 .max_replays = 50000,
                                 .verbose_log = false});
  const auto report = adversary.run(1);
  EXPECT_FALSE(report.violation_found);
  EXPECT_FALSE(report.cover_reached);
  EXPECT_TRUE(report.budget_exhausted);
}

TEST(CoveringAdversary, ProducesNarratedTrace) {
  const int n = 3;
  CoveringAdversary adversary(n,
                              make_weak_aba_factory<Fig4>(n, {.value_bits = 1}));
  const auto report = adversary.run(n - 1);
  EXPECT_FALSE(report.log.empty());
}

// ------------------------------------------------------- tradeoff auditor

TEST(TradeoffAuditor, Fig4Consistent) {
  for (int n : {2, 4, 8}) {
    TradeoffAuditor auditor(n, make_weak_aba_factory<Fig4>(n, {.value_bits = 1}));
    const auto report = auditor.audit();
    EXPECT_EQ(report.num_objects, n + 1) << report.summary();
    EXPECT_TRUE(report.all_bounded);
    EXPECT_FALSE(report.has_cas);
    EXPECT_EQ(report.worst_write_steps, 2u);
    EXPECT_EQ(report.worst_read_steps, 4u);
    EXPECT_TRUE(report.consistent_with_theorem1) << report.summary();
  }
}

TEST(TradeoffAuditor, Fig5OverFig3Consistent) {
  // m = 1 bounded CAS; t = O(n). Product stays above n-1 (Theorem 1(b)).
  for (int n : {2, 4, 8}) {
    TradeoffAuditor auditor(n, fig5_over_fig3_factory(n));
    const auto report = auditor.audit();
    EXPECT_EQ(report.num_objects, 1) << report.summary();
    EXPECT_TRUE(report.all_bounded);
    EXPECT_TRUE(report.has_cas);
    EXPECT_FALSE(report.has_writable_cas);
    // Worst-case WeakRead is VL + LL <= 2n+2; WeakWrite is LL + SC <= 4n+1.
    EXPECT_LE(report.t, static_cast<std::uint64_t>(4 * n + 1))
        << report.summary();
    EXPECT_TRUE(report.consistent_with_theorem1) << report.summary();
  }
}

TEST(TradeoffAuditor, Fig3ContentionApproachesWorstCase) {
  // Under the lock-step contention round, LL retry loops must actually pay
  // Theta(n) steps — the measured t grows with n.
  TradeoffAuditor a4(4, fig5_over_fig3_factory(4));
  TradeoffAuditor a8(8, fig5_over_fig3_factory(8));
  const auto r4 = a4.audit();
  const auto r8 = a8.audit();
  EXPECT_GT(r8.t, r4.t) << r4.summary() << "\n" << r8.summary();
  EXPECT_GE(r8.t, 8u);
}

TEST(TradeoffAuditor, MoirUnboundedBeatsTheBound) {
  // The unbounded-tag LL/SC gives m = 1, t = O(1): the product falls below
  // n-1 for larger n — only possible because the object is unbounded.
  const int n = 8;
  TradeoffAuditor auditor(n, fig5_over_moir_factory(n));
  const auto report = auditor.audit();
  EXPECT_FALSE(report.all_bounded);
  EXPECT_EQ(report.num_objects, 1);
  EXPECT_LE(report.t, 4u);
  EXPECT_FALSE(report.consistent_with_theorem1)
      << "unbounded implementations may beat the bounded-object bound: "
      << report.summary();
}

TEST(TradeoffAuditor, UnboundedTagRegisterBeatsTheBound) {
  const int n = 8;
  TradeoffAuditor auditor(
      n, make_weak_aba_factory<UnboundedTag>(n, {.value_bits = 1}));
  const auto report = auditor.audit();
  EXPECT_FALSE(report.all_bounded);
  EXPECT_EQ(report.num_objects, 1);
  EXPECT_EQ(report.t, 1u);
  EXPECT_FALSE(report.consistent_with_theorem1) << report.summary();
}

TEST(TradeoffAuditor, CensusStaysWithinLemma3Bound) {
  // Lemma 3(iii): at most t processes poised per operation class per object.
  for (int n : {3, 6}) {
    TradeoffAuditor auditor(n, fig5_over_fig3_factory(n));
    const auto report = auditor.audit();
    EXPECT_LE(report.max_cas_poise, report.t) << report.summary();
    EXPECT_LE(report.max_write_poise, report.t) << report.summary();
  }
}

TEST(TradeoffAuditor, SummaryIsInformative) {
  TradeoffAuditor auditor(3, make_weak_aba_factory<Fig4>(3, {.value_bits = 1}));
  const auto report = auditor.audit();
  const std::string s = report.summary();
  EXPECT_NE(s.find("n=3"), std::string::npos);
  EXPECT_NE(s.find("registers"), std::string::npos);
}

}  // namespace
}  // namespace aba::lowerbound
