// Unit tests for the shared-memory simulator: object semantics, the
// announce-then-block step protocol, poised-operation inspection,
// configuration snapshots, determinism, and teardown.
#include <gtest/gtest.h>

#include "sim/sim_platform.h"
#include "sim/sim_world.h"

namespace aba::sim {
namespace {

TEST(SimWorld, CreateAndInspectObjects) {
  SimWorld world(2);
  const ObjectId r = world.create_object(ObjectKind::kRegister, "r", 7,
                                         BoundSpec::bounded(8));
  const ObjectId c =
      world.create_object(ObjectKind::kCas, "c", 1, BoundSpec::unbounded());
  EXPECT_EQ(world.num_objects(), 2u);
  EXPECT_EQ(world.object_value(r), 7u);
  EXPECT_EQ(world.object_value(c), 1u);
  EXPECT_EQ(world.object_info(r).name, "r");
  EXPECT_EQ(world.object_info(c).kind, ObjectKind::kCas);
}

TEST(SimWorld, InvokeAnnouncesFirstStep) {
  SimWorld world(1);
  SimPlatform::Register reg(world, "r", 0, BoundSpec::unbounded());
  const auto status = world.invoke(0, [&] { reg.write(5); });
  EXPECT_EQ(status, MethodStatus::kPoised);
  // The write is announced but not yet executed.
  EXPECT_EQ(world.object_value(0), 0u);
  const auto op = world.poised(0);
  ASSERT_TRUE(op.has_value());
  EXPECT_EQ(op->kind, OpKind::kWrite);
  EXPECT_EQ(op->arg0, 5u);
  EXPECT_EQ(world.step(0), MethodStatus::kCompleted);
  EXPECT_EQ(world.object_value(0), 5u);
  EXPECT_TRUE(world.is_idle(0));
}

TEST(SimWorld, ZeroStepMethodCompletesAtInvoke) {
  SimWorld world(1);
  int ran = 0;
  const auto status = world.invoke(0, [&] { ran = 1; });
  EXPECT_EQ(status, MethodStatus::kCompleted);
  EXPECT_EQ(ran, 1);
  EXPECT_TRUE(world.all_idle());
}

TEST(SimWorld, StepsInterleaveAcrossProcesses) {
  SimWorld world(2);
  SimPlatform::Register reg(world, "r", 0, BoundSpec::unbounded());
  std::uint64_t seen0 = 99, seen1 = 99;
  world.invoke(0, [&] {
    reg.write(1);
    seen0 = reg.read();
  });
  world.invoke(1, [&] {
    reg.write(2);
    seen1 = reg.read();
  });
  // Schedule: p0 writes 1, p1 writes 2, p0 reads (sees 2), p1 reads (sees 2).
  world.step(0);
  world.step(1);
  world.step(0);
  world.step(1);
  EXPECT_TRUE(world.all_idle());
  EXPECT_EQ(seen0, 2u);
  EXPECT_EQ(seen1, 2u);
}

TEST(SimWorld, CasSemantics) {
  SimWorld world(1);
  SimPlatform::Cas cas(world, "c", 10, BoundSpec::unbounded());
  bool ok1 = false, ok2 = false;
  world.invoke(0, [&] {
    ok1 = cas.cas(10, 20);
    ok2 = cas.cas(10, 30);  // Expected stale -> must fail.
  });
  world.run_to_completion(0);
  EXPECT_TRUE(ok1);
  EXPECT_FALSE(ok2);
  EXPECT_EQ(world.object_value(0), 20u);
}

TEST(SimWorld, WritableCasSupportsAllOps) {
  SimWorld world(1);
  SimPlatform::WritableCas obj(world, "w", 0, BoundSpec::unbounded());
  std::uint64_t seen = 0;
  bool ok = false;
  world.invoke(0, [&] {
    obj.write(5);
    ok = obj.cas(5, 6);
    seen = obj.read();
  });
  world.run_to_completion(0);
  EXPECT_TRUE(ok);
  EXPECT_EQ(seen, 6u);
}

TEST(SimWorld, PoisedCasExposesArguments) {
  SimWorld world(1);
  SimPlatform::Cas cas(world, "c", 0, BoundSpec::unbounded());
  world.invoke(0, [&] { cas.cas(3, 4); });
  const auto op = world.poised(0);
  ASSERT_TRUE(op.has_value());
  EXPECT_EQ(op->kind, OpKind::kCas);
  EXPECT_EQ(op->arg0, 3u);
  EXPECT_EQ(op->arg1, 4u);
}

TEST(SimWorld, RunToCompletionCountsSteps) {
  SimWorld world(1);
  SimPlatform::Register reg(world, "r", 0, BoundSpec::unbounded());
  world.invoke(0, [&] {
    for (int i = 0; i < 5; ++i) reg.write(i);
  });
  EXPECT_EQ(world.run_to_completion(0), 5u);
  EXPECT_EQ(world.steps_in_method(0), 5u);
}

TEST(SimWorld, MemorySnapshotReflectsValues) {
  SimWorld world(1);
  SimPlatform::Register a(world, "a", 1, BoundSpec::unbounded());
  SimPlatform::Register b(world, "b", 2, BoundSpec::unbounded());
  auto snap = world.memory_snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0], 1u);
  EXPECT_EQ(snap[1], 2u);
  world.invoke(0, [&] { b.write(9); });
  world.run_to_completion(0);
  snap = world.memory_snapshot();
  EXPECT_EQ(snap[1], 9u);
}

TEST(SimWorld, SignatureIncludesPoisedOps) {
  SimWorld world(2);
  SimPlatform::Register reg(world, "r", 0, BoundSpec::unbounded());
  const auto sig_idle = world.signature_key();
  world.invoke(0, [&] { reg.write(1); });
  const auto sig_poised = world.signature_key();
  EXPECT_NE(sig_idle, sig_poised);
  // Same poised op with different argument -> different signature.
  world.step(0);
  world.invoke(0, [&] { reg.write(2); });
  const auto sig_poised2 = world.signature_key();
  EXPECT_NE(sig_poised, sig_poised2);
}

TEST(SimWorld, TraceRecordsSteps) {
  SimWorld world(1);
  SimPlatform::Register reg(world, "r", 0, BoundSpec::unbounded());
  world.invoke(0, [&] {
    reg.write(3);
    reg.read();
  });
  world.run_to_completion(0);
  const auto trace = world.trace_copy();
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace[0].kind, OpKind::kWrite);
  EXPECT_EQ(trace[0].arg0, 3u);
  EXPECT_EQ(trace[1].kind, OpKind::kRead);
  EXPECT_EQ(trace[1].result, 3u);
  EXPECT_LT(trace[0].time, trace[1].time);
}

TEST(SimWorld, TraceCanBeDisabled) {
  SimWorld world(1);
  SimPlatform::Register reg(world, "r", 0, BoundSpec::unbounded());
  world.set_trace_enabled(false);
  world.invoke(0, [&] { reg.write(3); });
  world.run_to_completion(0);
  EXPECT_TRUE(world.trace_copy().empty());
  EXPECT_EQ(world.total_steps(), 1u);
}

TEST(SimWorld, DeterministicReplayProducesIdenticalState) {
  auto run = [](int interleave) {
    SimWorld world(2);
    SimPlatform::WritableCas obj(world, "x", 0, BoundSpec::unbounded());
    world.invoke(0, [&] {
      obj.cas(0, 1);
      obj.cas(1, 2);
    });
    world.invoke(1, [&] {
      obj.cas(0, 10);
      obj.cas(10, 20);
    });
    if (interleave == 0) {
      world.step(0);
      world.step(1);
      world.step(0);
      world.step(1);
    } else {
      world.step(1);
      world.step(0);
      world.step(1);
      world.step(0);
    }
    return world.memory_snapshot();
  };
  // Same schedule twice -> identical; different schedule -> different result.
  EXPECT_EQ(run(0), run(0));
  EXPECT_EQ(run(1), run(1));
  EXPECT_NE(run(0), run(1));
}

TEST(SimWorld, DestructionWithMidMethodProcessesIsClean) {
  SimWorld world(2);
  SimPlatform::Register reg(world, "r", 0, BoundSpec::unbounded());
  world.invoke(0, [&] {
    for (int i = 0; i < 100; ++i) reg.write(i);
  });
  world.invoke(1, [&] { reg.read(); });
  world.step(0);
  // Both processes are mid-method here; the destructor must unwind them.
}

TEST(SimWorld, EventClockOrdersInvocationsAndSteps) {
  SimWorld world(1);
  SimPlatform::Register reg(world, "r", 0, BoundSpec::unbounded());
  const auto t0 = world.next_event_time();
  world.invoke(0, [&] { reg.write(1); });
  world.step(0);
  const auto t1 = world.next_event_time();
  EXPECT_LT(t0, t1);
  const auto trace = world.trace_copy();
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_GT(trace[0].time, t0);
  EXPECT_LT(trace[0].time, t1);
}

TEST(SimWorldDeath, BoundedObjectRejectsOverflowingWrite) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        SimWorld world(1);
        SimPlatform::Register reg(world, "r", 0, BoundSpec::bounded(4));
        world.invoke(0, [&] { reg.write(16); });  // 16 needs 5 bits.
        world.run_to_completion(0);
      },
      "exceeds declared object width");
}

TEST(SimWorldDeath, CasOnPlainRegisterRejected) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        SimWorld world(1);
        const ObjectId id = world.create_object(ObjectKind::kRegister, "r", 0,
                                                BoundSpec::unbounded());
        world.invoke(0, [&, id] {
          SimWorld::current_world()->access(PendingOp{id, OpKind::kCas, 0, 1});
        });
        world.run_to_completion(0);
      },
      "CAS\\(\\) on a plain register");
}

TEST(SimWorldDeath, WriteOnPureCasRejected) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        SimWorld world(1);
        const ObjectId id =
            world.create_object(ObjectKind::kCas, "c", 0, BoundSpec::unbounded());
        world.invoke(0, [&, id] {
          SimWorld::current_world()->access(PendingOp{id, OpKind::kWrite, 1, 0});
        });
        world.run_to_completion(0);
      },
      "Write\\(\\) on a non-writable CAS");
}

TEST(SimWorld, StepRecordToString) {
  StepRecord s{3, 1, 0, OpKind::kCas, 5, 6, 5, true};
  const std::string text = to_string(s);
  EXPECT_NE(text.find("CAS"), std::string::npos);
  EXPECT_NE(text.find("ok"), std::string::npos);
}

}  // namespace
}  // namespace aba::sim
