// Tests for the schedule-search engine (src/sim/schedule_search.h):
//
//   * script serialization round-trips and rejects malformed input;
//   * the searched adversary matches-or-beats the scripted park-and-storm
//     seed schedules (the GuardCacheSchedule / EpochSchedule pattern,
//     rebuilt here grant-by-grant through the same ScheduleRunner) for the
//     cached-guard hazard mode and for epochs — the ISSUE's acceptance
//     bar: search must rediscover at least what the hand-written worst
//     cases achieve;
//   * every serialized worst case replays deterministically: two replays
//     of the same script produce bit-identical step traces and the same
//     peak at the same grant;
//   * the top-K schedules the explorer finds are re-checked against the
//     structure invariants (multiset conservation + linearizability —
//     per-shard for the sharded fixture), not just random schedules:
//     a worst-case reclamation schedule must still be a correct execution;
//   * the committed corpus under tests/schedules/ (ABA_SCHEDULE_DIR)
//     replays with its golden bounds — every future reclaimer change is
//     checked against the worst schedules ever found.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "reclaim/reclaimer.h"
#include "sim/schedule_search.h"
#include "sim/types.h"
#include "spec/lin_checker.h"
#include "spec/specs.h"
#include "util/assert.h"

namespace aba::search {
namespace {

using harness::WorkloadOp;
using spec::Method;

constexpr int kProcs = 2;
constexpr int kCycles = 12;

std::string trace_signature(const std::vector<sim::StepRecord>& trace) {
  std::ostringstream out;
  for (const auto& step : trace) out << sim::to_string(step) << "\n";
  return out.str();
}

// Multiset conservation: every taken value was put successfully at least as
// many times as it was taken.
void expect_conserved(const std::vector<spec::Op>& ops, Method take) {
  std::map<std::uint64_t, long> balance;
  for (const auto& op : ops) {
    if (op.method != take && op.ret == 1) ++balance[op.arg];
  }
  for (const auto& op : ops) {
    if (op.method == take && op.ret != 0) {
      const std::uint64_t value = op.ret - 1;  // pack_opt inverse
      auto it = balance.find(value);
      ASSERT_TRUE(it != balance.end() && it->second > 0)
          << "taken value " << value << " never put (or taken twice)";
      --it->second;
    }
  }
}

template <class Spec>
void expect_linearizable(const std::vector<spec::Op>& ops) {
  const auto result = spec::check_linearizable<Spec>(ops, Spec::initial());
  EXPECT_TRUE(result.linearizable) << spec::explain(ops, result);
}

// The full invariant battery on one replayed schedule: conservation plus
// linearizability — whole-history for flat fixtures, per-shard when the
// fixture recorded landing shards. Crash schedules skip linearizability:
// the victim's pending op may have taken effect without completing (e.g. a
// crash mid-retire removed a value no recorded take accounts for), so only
// conservation — no value taken that was never put — still holds on the
// completed history.
void expect_schedule_invariants(const ReplayResult& replay, bool is_queue,
                                bool has_crash = false) {
  const Method take = is_queue ? Method::kDeq : Method::kPop;
  expect_conserved(replay.history, take);
  if (has_crash) return;
  if (replay.shard_tags.empty()) {
    if (is_queue) {
      expect_linearizable<spec::QueueSpec>(replay.history);
    } else {
      expect_linearizable<spec::StackSpec>(replay.history);
    }
    return;
  }
  ASSERT_EQ(replay.history.size(), replay.shard_tags.size());
  std::vector<std::vector<spec::Op>> by_shard(
      static_cast<std::size_t>(replay.num_shards));
  for (std::size_t i = 0; i < replay.history.size(); ++i) {
    ASSERT_GE(replay.shard_tags[i], 0) << "op " << i << " missing shard tag";
    ASSERT_LT(replay.shard_tags[i], replay.num_shards);
    by_shard[static_cast<std::size_t>(replay.shard_tags[i])].push_back(
        replay.history[i]);
  }
  for (const auto& sub : by_shard) expect_linearizable<spec::StackSpec>(sub);
}

// The scripted seed, rebuilt grant-by-grant: complete the storm driver's
// priming put solo, drive the reader until its reclaimer reports a
// vulnerable phase (guard just published / epoch just announced), PARK it
// there, run the storm to exhaustion, then let the reader resume. Returns
// the script and its peak — the bound the searcher must meet or beat.
std::pair<ScheduleScript, double> scripted_park_and_storm(
    const std::string& fixture_name, const std::vector<WorkloadOp>& workload) {
  ScheduleRunner runner(reclaim_fixture(fixture_name)(kProcs), workload,
                       retired_unreclaimed_cost);
  runner.grant(0);  // Invoke the priming put...
  while (!runner.fixture().world->is_idle(0)) runner.grant(0);  // ...solo.
  while (runner.runnable(1) &&
         !reclaim::is_vulnerable(runner.invoker().reclaim_phase(1))) {
    runner.grant(1);
  }
  runner.grant_while_runnable(0, 1u << 20);  // The retire storm.
  while (!runner.all_done()) {
    bool moved = false;
    for (int pid = 0; pid < runner.num_processes(); ++pid) {
      if (runner.runnable(pid)) {
        runner.grant(pid);
        moved = true;
        break;
      }
    }
    ABA_CHECK_MSG(moved, "scripted seed: no runnable process but work remains");
  }
  return {runner.script(), runner.peak()};
}

// Search, then check the acceptance bar against the scripted seed: the
// best found schedule must reach at least the scripted peak, and its
// serialized script must replay deterministically (bit-identical traces,
// same peak at the same grant, twice).
void expect_search_beats_scripted(const std::string& fixture_name,
                                  double min_scripted_peak) {
  const auto factory = reclaim_fixture(fixture_name);
  const auto workload = storm_workload(fixture_name, kProcs, kCycles);

  const auto [seed_script, scripted_peak] =
      scripted_park_and_storm(fixture_name, workload);
  EXPECT_GE(scripted_peak, min_scripted_peak)
      << fixture_name << ": the scripted seed must itself do damage";

  SearchOptions options;
  options.top_k = 3;
  options.context_bound = 3;
  options.max_executions = 128;
  ScheduleExplorer explorer(factory, kProcs, workload,
                            retired_unreclaimed_cost, options);
  const SearchResult result = explorer.run();
  ASSERT_NE(result.top(), nullptr) << fixture_name;
  EXPECT_GE(result.top()->peak_cost, scripted_peak)
      << fixture_name << ": search must rediscover the scripted worst case"
      << " (explored " << result.executions << " schedules)";

  // Serialize → parse → replay twice: deterministic to the bit.
  const std::string text = result.top()->script.serialize();
  const auto parsed = ScheduleScript::parse(text);
  ASSERT_TRUE(parsed.has_value()) << text;
  const ReplayResult first =
      ScheduleExplorer::replay(factory, *parsed, retired_unreclaimed_cost);
  const ReplayResult second =
      ScheduleExplorer::replay(factory, *parsed, retired_unreclaimed_cost);
  EXPECT_EQ(first.peak_cost, result.top()->peak_cost);
  EXPECT_EQ(first.peak_cost, second.peak_cost);
  EXPECT_EQ(first.peak_grant, second.peak_grant);
  EXPECT_EQ(trace_signature(first.trace), trace_signature(second.trace))
      << fixture_name << ": replays must be bit-identical";
}

// ------------------------------------------------------------- script

TEST(ScheduleScript, SerializeParseRoundTrip) {
  ScheduleScript script;
  script.num_processes = 2;
  script.workload = {{0, Method::kPush, 7}, {1, Method::kPop, 0},
                     {0, Method::kEnq, 9},  {1, Method::kDeq, 0}};
  script.grants = {0, 0, 1, 1, 0, 1};
  script.meta["fixture"] = "stack_epoch";
  script.meta["expect_peak"] = "13";

  const auto parsed = ScheduleScript::parse(script.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->num_processes, script.num_processes);
  EXPECT_EQ(parsed->grants, script.grants);
  EXPECT_EQ(parsed->meta, script.meta);
  ASSERT_EQ(parsed->workload.size(), script.workload.size());
  for (std::size_t i = 0; i < script.workload.size(); ++i) {
    EXPECT_EQ(parsed->workload[i].pid, script.workload[i].pid);
    EXPECT_EQ(parsed->workload[i].method, script.workload[i].method);
    EXPECT_EQ(parsed->workload[i].arg, script.workload[i].arg);
  }
}

TEST(ScheduleScript, CrashGrantsRoundTrip) {
  // Crash grants serialize as "!<pid>" tokens in the grants lines and
  // survive a serialize → parse round trip as the negative encoding.
  ScheduleScript script;
  script.num_processes = 2;
  script.workload = {{0, Method::kPush, 7}, {1, Method::kPop, 0}};
  script.grants = {0, 1, crash_grant(1), 0, 0};
  script.meta["crashes"] = "1";

  const std::string text = script.serialize();
  EXPECT_NE(text.find("!1"), std::string::npos) << text;
  const auto parsed = ScheduleScript::parse(text);
  ASSERT_TRUE(parsed.has_value()) << text;
  EXPECT_EQ(parsed->grants, script.grants);
  EXPECT_EQ(parsed->meta, script.meta);
}

TEST(ScheduleScript, ParseRejectsMalformedInput) {
  EXPECT_FALSE(ScheduleScript::parse("").has_value());
  EXPECT_FALSE(ScheduleScript::parse("not-a-script v1\nend\n").has_value());
  EXPECT_FALSE(  // Missing end marker (truncated file).
      ScheduleScript::parse("schedule-script v1\nprocesses 2\n").has_value());
  EXPECT_FALSE(  // Grant to a pid outside [0, n).
      ScheduleScript::parse(
          "schedule-script v1\nprocesses 2\ngrants 0 2\nend\n")
          .has_value());
  EXPECT_FALSE(  // Unknown method.
      ScheduleScript::parse(
          "schedule-script v1\nprocesses 1\nop 0 swap 3\nend\n")
          .has_value());
  EXPECT_FALSE(  // Crash grant naming a pid outside [0, n).
      ScheduleScript::parse(
          "schedule-script v1\nprocesses 2\ngrants 0 !2\nend\n")
          .has_value());
  EXPECT_FALSE(  // Crash token with no pid.
      ScheduleScript::parse(
          "schedule-script v1\nprocesses 2\ngrants 0 !\nend\n")
          .has_value());
  EXPECT_FALSE(  // Non-numeric grant token.
      ScheduleScript::parse(
          "schedule-script v1\nprocesses 2\ngrants 0 !x\nend\n")
          .has_value());
}

TEST(ScheduleScript, AllStandardFixturesConstruct) {
  for (const std::string& name : reclaim_fixture_names()) {
    const SearchFixture fixture = reclaim_fixture(name)(kProcs);
    EXPECT_NE(fixture.world, nullptr) << name;
    EXPECT_NE(fixture.invoker, nullptr) << name;
  }
}

// ----------------------------------------------- search vs scripted seed

TEST(ScheduleSearch, BeatsScriptedSeedStackHazardCached) {
  // The scripted bound is the hazard scan threshold (2·H = 8 for n=2): a
  // storm's retired list peaks exactly there before the scan fires.
  expect_search_beats_scripted("stack_hazard_cached", 8.0);
}

TEST(ScheduleSearch, BeatsScriptedSeedStackEpoch) {
  // A parked announcement freezes the epoch, so every storm retire stays
  // in limbo: the scripted peak is the full storm (cycles + prime).
  expect_search_beats_scripted("stack_epoch", static_cast<double>(kCycles));
}

TEST(ScheduleSearch, BeatsScriptedSeedQueueHazardCached) {
  expect_search_beats_scripted("queue_hazard_cached", 8.0);
}

TEST(ScheduleSearch, BeatsScriptedSeedQueueEpoch) {
  expect_search_beats_scripted("queue_epoch", static_cast<double>(kCycles));
}

// ------------------------------------------------- top-K invariant checks

TEST(ScheduleSearch, TopKSchedulesKeepStructureInvariants) {
  SearchOptions options;
  options.top_k = 3;
  options.max_executions = 32;
  for (const std::string& name :
       {std::string("stack_hazard"), std::string("stack_hazard_cached"),
        std::string("stack_epoch"), std::string("queue_hazard"),
        std::string("queue_hazard_cached"), std::string("queue_epoch")}) {
    const auto factory = reclaim_fixture(name);
    const auto workload = storm_workload(name, kProcs, 6);
    ScheduleExplorer explorer(factory, kProcs, workload,
                              retired_unreclaimed_cost, options);
    const SearchResult result = explorer.run();
    ASSERT_FALSE(result.best.empty()) << name;
    for (const FoundSchedule& found : result.best) {
      SCOPED_TRACE(::testing::Message()
                   << name << " peak=" << found.peak_cost);
      const ReplayResult replay = ScheduleExplorer::replay(
          factory, found.script, retired_unreclaimed_cost);
      EXPECT_EQ(replay.peak_cost, found.peak_cost)
          << "replay must reproduce the search's peak";
      expect_schedule_invariants(replay, name.rfind("queue", 0) == 0);
    }
  }
}

TEST(ScheduleSearch, ShardedTopKKeepsPerShardLinearizability) {
  const std::string name = "sharded_stack_hazard_cached";
  const auto factory = reclaim_fixture(name);
  const auto workload = storm_workload(name, kProcs, 6);
  SearchOptions options;
  options.top_k = 3;
  options.max_executions = 32;
  ScheduleExplorer explorer(factory, kProcs, workload,
                            retired_unreclaimed_cost, options);
  const SearchResult result = explorer.run();
  ASSERT_FALSE(result.best.empty());
  for (const FoundSchedule& found : result.best) {
    const ReplayResult replay = ScheduleExplorer::replay(
        factory, found.script, retired_unreclaimed_cost);
    ASSERT_EQ(replay.num_shards, 2);
    ASSERT_FALSE(replay.shard_tags.empty());
    expect_schedule_invariants(replay, /*is_queue=*/false);
  }
}

// ------------------------------------------------------------- corpus

std::vector<std::filesystem::path> corpus_files() {
  std::vector<std::filesystem::path> files;
  const std::filesystem::path dir(ABA_SCHEDULE_DIR);
  if (std::filesystem::exists(dir)) {
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
      if (entry.path().extension() == ".sched") files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(ScheduleCorpus, ReplaysAreBitIdenticalAndMatchGoldenBounds) {
  const auto files = corpus_files();
  ASSERT_FALSE(files.empty())
      << "no committed corpus under " << ABA_SCHEDULE_DIR;
  std::set<std::string> fixtures_seen;
  for (const auto& path : files) {
    SCOPED_TRACE(path.filename().string());
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream buffer;
    buffer << in.rdbuf();
    const auto script = ScheduleScript::parse(buffer.str());
    ASSERT_TRUE(script.has_value()) << "corpus file failed to parse";

    ASSERT_TRUE(script->meta.count("fixture"));
    ASSERT_TRUE(script->meta.count("cost"));
    const std::string fixture_name = script->meta.at("fixture");
    fixtures_seen.insert(fixture_name);
    const int pool = script->meta.count("pool")
                         ? std::stoi(script->meta.at("pool"))
                         : kDefaultPoolPerProcess;
    const auto factory = reclaim_fixture(fixture_name, pool);
    const CostFn cost = cost_by_name(script->meta.at("cost"));

    // Lease-mutant convictions (PR 10) are committed *because* they violate
    // the spec: replays must re-produce the failing verdict bit-identically
    // instead of matching golden peaks, and the schedule-invariant sweep
    // (which insists on a correct execution) does not apply.
    if (script->meta.count("expect_verdict")) {
      ASSERT_EQ(script->meta.at("expect_verdict"), "violation");
      const ReplayResult first =
          ScheduleExplorer::replay(factory, *script, cost);
      const ReplayResult second =
          ScheduleExplorer::replay(factory, *script, cost);
      EXPECT_TRUE(first.verdict.checked);
      EXPECT_FALSE(first.verdict.ok)
          << "committed conviction no longer replays to a violation";
      EXPECT_EQ(first.verdict.detail, second.verdict.detail);
      EXPECT_EQ(trace_signature(first.trace), trace_signature(second.trace));
      ASSERT_TRUE(script->meta.count("crashes"));
      EXPECT_EQ(std::count_if(script->grants.begin(), script->grants.end(),
                              [](int g) { return is_crash_grant(g); }),
                std::stoll(script->meta.at("crashes")));
      continue;
    }
    ASSERT_TRUE(script->meta.count("expect_peak"));

    const ReplayResult first = ScheduleExplorer::replay(factory, *script, cost);
    const ReplayResult second =
        ScheduleExplorer::replay(factory, *script, cost);

    // Golden bound: the peak this schedule was committed with.
    EXPECT_EQ(first.peak_cost, std::stod(script->meta.at("expect_peak")));
    if (script->meta.count("expect_peak_grant")) {
      EXPECT_EQ(first.peak_grant,
                std::stoull(script->meta.at("expect_peak_grant")));
    }
    if (script->meta.count("expect_grants")) {
      EXPECT_EQ(script->grants.size(),
                std::stoull(script->meta.at("expect_grants")))
          << "committed grant count went stale";
    }
    // Bit-identical determinism across replays.
    EXPECT_EQ(first.peak_cost, second.peak_cost);
    EXPECT_EQ(first.peak_grant, second.peak_grant);
    EXPECT_EQ(trace_signature(first.trace), trace_signature(second.trace));

    // Crash schedules carry golden *recovery* bounds: after the victim is
    // killed mid-protocol, the survivors' final reclaimer stats must land
    // exactly where they did when the schedule was committed.
    const bool has_crash =
        std::any_of(script->grants.begin(), script->grants.end(),
                    [](int g) { return is_crash_grant(g); });
    if (has_crash) {
      ASSERT_TRUE(script->meta.count("crashes"));
      EXPECT_EQ(std::count_if(script->grants.begin(), script->grants.end(),
                              [](int g) { return is_crash_grant(g); }),
                std::stoll(script->meta.at("crashes")));
      ASSERT_TRUE(script->meta.count("expect_expropriations"))
          << "crash schedule missing its recovery bound";
      EXPECT_EQ(first.final_stats.expropriations,
                std::stoull(script->meta.at("expect_expropriations")));
      if (script->meta.count("expect_final_retired")) {
        EXPECT_EQ(first.final_stats.retired_unreclaimed,
                  std::stoull(script->meta.at("expect_final_retired")));
      }
      if (script->meta.count("expect_final_free")) {
        EXPECT_EQ(first.final_stats.free_nodes,
                  std::stoull(script->meta.at("expect_final_free")));
      }
      if (script->meta.count("expect_quarantined")) {
        EXPECT_EQ(first.final_stats.quarantined,
                  std::stoull(script->meta.at("expect_quarantined")));
      }
    }
    // A worst case must still be a correct execution (of the completed ops).
    expect_schedule_invariants(first, fixture_name.rfind("queue", 0) == 0,
                               has_crash);
  }
  // The acceptance pair the ISSUE names must be in the committed corpus,
  // and so must the deferred-announce epoch fixtures (PR 9).
  EXPECT_TRUE(fixtures_seen.count("stack_hazard_cached")) << "corpus gap";
  EXPECT_TRUE(fixtures_seen.count("stack_epoch")) << "corpus gap";
  EXPECT_TRUE(fixtures_seen.count("stack_epoch_deferred")) << "corpus gap";
  EXPECT_TRUE(fixtures_seen.count("queue_epoch_deferred")) << "corpus gap";
}

}  // namespace
}  // namespace aba::search
