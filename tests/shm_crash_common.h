// Shared vocabulary of the multi-process crash harness: the driver test
// (test_shm_crash.cpp) and the sacrificial worker (shm_crash_child.cpp)
// must construct the *same* structure over the same segment — the arena
// layout hash (shm_platform.h) checks that they did.
//
// World shape: 2 lease slots over one segment. The driver creates the
// segment and acquires slot 0; the child attaches, acquires slot 1, waits
// for the driver to plant a park request on its lease, then storms
// put/take cycles until the instrumented park point (pid_lease.h) catches
// it mid-protocol — where the driver SIGKILLs it.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "shm/leased_reclaimer.h"
#include "shm/pid_lease.h"
#include "shm/shm_platform.h"
#include "shm/shm_segment.h"
#include "structures/ms_queue.h"
#include "structures/treiber_stack.h"

namespace aba::shm::crash {

inline constexpr int kProcs = 2;
inline constexpr int kDriverSlot = 0;
inline constexpr int kVictimSlot = 1;
inline constexpr int kNodesPerProc = 16;
inline constexpr std::size_t kSegmentBytes = 1 << 21;

// The two reclaimer families under test, one structure each. The cached
// hazard variant is the more crash-exposed of the two hazard modes (a
// guard outlives the operation that published it), so it is the one the
// harness kills.
using CrashStack =
    structures::TreiberStack<ShmPlatform, structures::RawCasHead<ShmPlatform>,
                             LeasedCachedHazardReclaimer>;
using CrashQueue = structures::MsQueue<ShmPlatform, LeasedEpochReclaimer>;

inline constexpr const char* kKindStackHazard = "stack_hazard_cached";
inline constexpr const char* kKindQueueEpoch = "queue_epoch";
// Same world as queue_epoch, but the worker storms retire_batch directly:
// the crash surface is the staged shm pending window (SharedBook::pending),
// not the single-node in_retire marker.
inline constexpr const char* kKindQueueEpochBatch = "queue_epoch_batch";

// One world: segment + arena + leases + the structure named by `kind`.
// Creator and attacher run this same sequence (owner toggles placement
// vs. bind), which is exactly what the layout hash certifies.
struct CrashWorld {
  ShmSegment seg;
  ShmArena arena;
  PidLeaseTable leases;
  ShmPlatform::Env env;
  std::unique_ptr<CrashStack> stack;
  std::unique_ptr<CrashQueue> queue;

  CrashWorld(ShmSegment&& segment, bool owner, const std::string& kind)
      : seg(std::move(segment)),
        arena(seg, owner),
        leases(arena, kProcs),
        env{&arena, &leases, owner} {
    if (kind == kKindStackHazard) {
      stack = std::make_unique<CrashStack>(
          env, kProcs,
          std::make_unique<structures::RawCasHead<ShmPlatform>>(env, kProcs),
          CrashStack::partition(kProcs, kNodesPerProc));
    } else if (kind == kKindQueueEpoch || kind == kKindQueueEpochBatch) {
      queue = std::make_unique<CrashQueue>(env, kProcs, kNodesPerProc);
    } else {
      ABA_CHECK_MSG(false, "unknown crash-world kind");
    }
    if (owner) {
      seg.publish(arena.layout_hash());
    } else {
      seg.verify_layout(arena.layout_hash());
    }
  }

  bool put(int p, std::uint64_t v) {
    return stack ? stack->push(p, v) : queue->enqueue(p, v);
  }
  std::optional<std::uint64_t> take(int p) {
    return stack ? stack->pop(p) : queue->dequeue(p);
  }
  reclaim::ReclaimStats stats() const {
    return stack ? stack->reclaimer().stats() : queue->reclaimer().stats();
  }
  // One survivor reclamation pass (the unit of the recovery bound): a
  // hazard scan, or an epoch advance attempt + collection.
  void survivor_pass(int p) {
    if (stack) {
      stack->reclaimer().scan(p);
    } else {
      queue->reclaimer().try_advance(p);
      queue->reclaimer().collect(p);
    }
  }
  // One cycle of the batch-retire kind: allocate a small batch straight
  // from the pool and hand it all back through retire_batch. The park
  // point inside retire_batch sits BETWEEN staging the chunk in the shm
  // pending window and stamping/listing the nodes — at that instant the
  // window is the chunk's ONLY record, which is what the driver shoots at.
  bool batch_retire_cycle(int p) {
    std::uint64_t idxs[4];
    std::size_t got = 0;
    auto& r = queue->reclaimer();
    while (got < 4) {
      const auto idx = r.allocate(p);
      if (!idx) break;
      r.commit(p);
      idxs[got++] = *idx;
    }
    if (got == 0) return false;
    r.retire_batch(p, idxs, got);
    return true;
  }

  // Nodes the structure itself holds when empty (MS queue keeps a dummy).
  std::size_t resident_nodes() const { return queue ? 1u : 0u; }
};

}  // namespace aba::shm::crash
